package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/engine"
	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/shard"
)

// Config selects what to evaluate over a window and how.
type Config struct {
	Algo   algo.Algorithm
	Source graph.VertexID
	Engine engine.Options
	// KeepValues retains the full per-snapshot value arrays in the result
	// (tests and small runs); otherwise only counts and checksums are kept.
	KeepValues bool
	// Parallelism bounds concurrent hops in DirectHopParallel; 0 means
	// one goroutine per snapshot.
	Parallelism int
	// OptimalSchedule selects the interval-DP Steiner solver instead of
	// the paper's greedy (Algorithm 1). On wide windows the DP finds
	// schedules streaming several times fewer additions, at a solver cost
	// of O(w^5) — see the ablation-steiner experiment.
	OptimalSchedule bool
	// Ctx cancels the evaluation cooperatively: it is observed at every
	// schedule-edge boundary (each Direct-Hop, each Work-Sharing DFS
	// edge), so a deadline or client disconnect stops the work within one
	// edge. Nil means the evaluation is never cancelled.
	Ctx context.Context
	// Degrade lets WorkSharingParallel survive a failed (erroring or
	// panicking) schedule subtree: the subtree's snapshots are recomputed
	// via Direct-Hop from the base state and the Result is marked
	// Degraded, instead of the whole query failing.
	Degrade bool
	// Trace, when non-nil, is the query's root span: executors hang
	// schedule-level spans off it (common.solve, hop, schedule.edge,
	// subtree — the taxonomy DESIGN.md "Observability" documents) and the
	// engine nests its per-pass spans below those. Nil — the default —
	// disables tracing at one pointer test per span site; the hot
	// per-vertex loop is never instrumented either way.
	Trace *obs.Span
	// Common, when non-nil, is a pre-solved fixpoint state for the
	// window's common graph: solveCommon clones it instead of running the
	// from-scratch solve. The caller owns correctness — the state must be
	// the exact fixpoint of (Algo, Source) on the rep's base graph. The
	// cross-query PlanCache uses this to share one common-graph solve
	// among overlapping concurrent queries.
	Common *engine.State
}

// nodeRef renders a schedule node as "i,j" for span attributes. In a
// schedule tree every node has one incoming edge, so the destination ref
// alone identifies a schedule edge.
func nodeRef(n *ScheduleNode) string { return fmt.Sprintf("%d,%d", n.I, n.J) }

// solveCommon is the shared from-scratch solve on the common graph, under
// a "common.solve" span (with the engine's own pass span nested inside).
func solveCommon(g delta.Graph, cfg Config) (*engine.State, engine.Stats) {
	if cfg.Common != nil {
		sp := cfg.Trace.StartChild("common.reuse")
		st := cfg.Common.Clone()
		sp.End()
		return st, engine.Stats{}
	}
	sp := cfg.Trace.StartChild("common.solve")
	st, stats := shard.Run(g, cfg.Algo, cfg.Source, cfg.Engine.WithSpan(sp))
	sp.End()
	return st, stats
}

// executorCtx is the context pprof.Do labels executor goroutines with;
// labels propagate to everything the goroutine spawns, so CPU profiles of
// a busy service split by executor.
func executorCtx(cfg Config) context.Context {
	if cfg.Ctx != nil {
		return cfg.Ctx
	}
	return context.Background() //cgvet:ignore ctxflow -- nil Config.Ctx means "never cancelled"; pprof labelling still needs some context to hang off
}

// solveSchedule picks the configured Steiner solver.
func solveSchedule(tg *TG, cfg Config) *SteinerTree {
	if cfg.OptimalSchedule {
		return SteinerIntervalDP(tg)
	}
	return SteinerGreedy(tg)
}

// SnapshotResult is the query outcome at one snapshot of the window.
type SnapshotResult struct {
	Index    int // window-relative snapshot index
	Reached  int
	Checksum uint64
	Values   []algo.Value // nil unless Config.KeepValues
}

// Cost attributes an evaluation's wall time to phases, mirroring the
// KickStarter breakdown for Figure 11. OverlayBuild is the CommonGraph
// replacement for graph mutation; there are no deletion phases at all.
type Cost struct {
	InitialCompute time.Duration // from-scratch solve on the common graph
	IncrementalAdd time.Duration
	OverlayBuild   time.Duration
	StateClone     time.Duration
}

// Total sums every phase.
func (c Cost) Total() time.Duration {
	return c.InitialCompute + c.IncrementalAdd + c.OverlayBuild + c.StateClone
}

// Result is the outcome of evaluating a query over a whole window.
type Result struct {
	Snapshots []SnapshotResult
	Cost      Cost
	Work      engine.Stats
	// AdditionsProcessed counts batch edges streamed across all hops —
	// the schedule-cost metric of §3 (22 vs 19 in the worked example).
	AdditionsProcessed int64
	// MaxHopTime is the longest single independent unit of the strategy —
	// a per-snapshot hop for Direct-Hop (sequential and parallel) and
	// Independent, a root subtree for Work-Sharing (sequential and
	// parallel). It is the paper's Table 5 estimate of the runtime with
	// one core per unit. Zero only for KickStarter-style fully sequential
	// plans and single-snapshot windows.
	MaxHopTime time.Duration
	// Degraded marks that at least one schedule subtree failed and its
	// snapshots were recomputed via the Direct-Hop fallback
	// (Config.Degrade). Degraded snapshot values are still exact — the
	// fallback recomputes from the base state — only the work sharing was
	// lost.
	Degraded bool
	// SnapshotErrors records, per window-relative snapshot index, the
	// original subtree failure that forced that snapshot onto the
	// fallback path. Nil unless Degraded.
	SnapshotErrors map[int]error
}

// Checksum folds the state's values FNV-style so snapshot results can be
// compared across evaluation strategies without retaining full arrays.
func Checksum(st *engine.State) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i, n := 0, st.NumVertices(); i < n; i++ {
		h ^= uint64(uint32(st.Value(graph.VertexID(i))))
		h *= prime
	}
	return h
}

// maxOverlayDepth bounds the Work-Sharing overlay stack: deeper stacks
// slow every adjacency visit, so the accumulated batches consolidate into
// one overlay past this depth (amortizing the O(V + |Δ|) rebuild).
const maxOverlayDepth = 64

// edgeParts converts a slice of EdgeLists to the engine's parts shape.
func edgeParts(lists []graph.EdgeList) [][]graph.Edge {
	out := make([][]graph.Edge, len(lists))
	for i, l := range lists {
		out[i] = l
	}
	return out
}

func snapshotResult(k int, st *engine.State, keep bool) SnapshotResult {
	r := SnapshotResult{Index: k, Reached: st.Reached(), Checksum: Checksum(st)}
	if keep {
		r.Values = st.Values()
	}
	return r
}

// DirectHop evaluates the query on every snapshot of the window via §3.1:
// solve the common graph once, then for each snapshot independently stream
// its Δ_ck addition batch and update incrementally. Sequential; see
// DirectHopParallel for the parallel variant.
func DirectHop(rep *Rep, cfg Config) (*Result, error) {
	if err := checkpoint(cfg.Ctx, faults.CoreEngineRun); err != nil {
		return nil, err
	}
	cfg.Engine = rep.pinShardPlan(cfg.Engine)
	res := &Result{}
	t0 := time.Now()
	baseState, stats := solveCommon(rep.Base, cfg)
	res.Cost.InitialCompute = time.Since(t0)
	res.Work.Add(stats)
	hops := obs.HopSeconds("direct-hop")

	for k := range rep.Deltas {
		// Hops are the schedule edges of the §3.1 plan: cancellation and
		// injected faults are observed once per hop.
		if err := checkpoint(cfg.Ctx, faults.CoreOverlayBuild); err != nil {
			return nil, err
		}
		sp := cfg.Trace.StartChild("hop",
			obs.Int("snapshot", k), obs.Int("batch", rep.Deltas[k].Len()))
		t1 := time.Now()
		ov := delta.NewOverlay(rep.N, rep.Deltas[k])
		og := delta.NewOverlayGraph(rep.Base, ov)
		t2 := time.Now()
		res.Cost.OverlayBuild += t2.Sub(t1)

		st := baseState.Clone()
		t3 := time.Now()
		res.Cost.StateClone += t3.Sub(t2)

		s := shard.IncrementalAdd(og, st, rep.Deltas[k].Edges(), cfg.Engine.WithSpan(sp))
		t4 := time.Now()
		res.Cost.IncrementalAdd += t4.Sub(t3)
		sp.End()
		// Hops are mutually independent, so the longest one estimates the
		// wall time with a core per snapshot (Table 5); measuring it here,
		// in the sequential loop, keeps hops from inflating each other on
		// small machines.
		hop := t4.Sub(t1)
		hops.Observe(hop)
		if hop > res.MaxHopTime {
			res.MaxHopTime = hop
		}
		res.Work.Add(s)
		res.AdditionsProcessed += int64(rep.Deltas[k].Len())
		res.Snapshots = append(res.Snapshots, snapshotResult(k, st, cfg.KeepValues))
	}
	return res, nil
}

// DirectHopParallel runs every hop of DirectHop concurrently (the paper's
// Table 5): hops are independent because each starts from the common
// graph's solution, the dependency streaming imposes having been broken.
// MaxHopTime in the result is the longest single hop.
func DirectHopParallel(rep *Rep, cfg Config) (*Result, error) {
	if err := checkpoint(cfg.Ctx, faults.CoreEngineRun); err != nil {
		return nil, err
	}
	cfg.Engine = rep.pinShardPlan(cfg.Engine)
	res := &Result{}
	t0 := time.Now()
	baseState, stats := solveCommon(rep.Base, cfg)
	res.Cost.InitialCompute = time.Since(t0)
	res.Work.Add(stats)
	hops := obs.HopSeconds("direct-hop-parallel")
	busy := obs.WorkersBusy()
	ctx := executorCtx(cfg)

	w := len(rep.Deltas)
	res.Snapshots = make([]SnapshotResult, w)
	durations := make([]time.Duration, w)
	errs := make([]error, w)
	par := cfg.Parallelism
	if par <= 0 || par > w {
		par = w
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			// Each hop owns exactly one slot k of these slices, so the
			// writes are disjoint and need no lock; wg.Wait publishes them.
			var hopErr error
			defer func() {
				errs[k] = hopErr //cgvet:ignore lockdiscipline -- index-disjoint, one k per goroutine
			}()
			defer recoverToError(&hopErr)
			sem <- struct{}{}
			defer func() { <-sem }()
			busy.Add(1)
			defer busy.Add(-1)
			// Cancellation and injected faults are observed at the hop
			// boundary, before the hop's work starts.
			if hopErr = checkpoint(cfg.Ctx, faults.CoreOverlayBuild); hopErr != nil {
				return
			}
			// Fork: each hop renders on its own trace track, so the
			// Chrome view shows the hops' actual overlap.
			sp := cfg.Trace.Fork("hop",
				obs.Int("snapshot", k), obs.Int("batch", rep.Deltas[k].Len()))
			pprof.Do(ctx, pprof.Labels("cg_executor", "direct-hop-parallel"), func(context.Context) {
				start := time.Now()
				ov := delta.NewOverlay(rep.N, rep.Deltas[k])
				og := delta.NewOverlayGraph(rep.Base, ov)
				st := baseState.Clone()
				shard.IncrementalAdd(og, st, rep.Deltas[k].Edges(), cfg.Engine.WithSpan(sp))
				durations[k] = time.Since(start)                         //cgvet:ignore lockdiscipline -- index-disjoint, one k per goroutine
				res.Snapshots[k] = snapshotResult(k, st, cfg.KeepValues) //cgvet:ignore lockdiscipline -- index-disjoint, one k per goroutine
			})
			sp.End()
			hops.Observe(durations[k])
		}(k)
	}
	wg.Wait()
	// Hop failures (including recovered panics) join into one error; a
	// partial snapshot slice is never returned.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for k := 0; k < w; k++ {
		res.AdditionsProcessed += int64(rep.Deltas[k].Len())
		if durations[k] > res.MaxHopTime {
			res.MaxHopTime = durations[k]
		}
	}
	return res, nil
}

// WorkSharing evaluates the window along a schedule tree: the common graph
// is solved once, and the DFS streams each schedule edge's merged batch
// exactly once, sharing both the batch's streaming and the intermediate
// common graph states among every snapshot below it (§3.2).
func WorkSharing(rep *Rep, tg *TG, sched *Schedule, cfg Config) (*Result, error) {
	if tg.W != rep.Window.Width() {
		return nil, fmt.Errorf("core: TG width %d does not match window width %d", tg.W, rep.Window.Width())
	}
	if err := checkpoint(cfg.Ctx, faults.CoreEngineRun); err != nil {
		return nil, err
	}
	cfg.Engine = rep.pinShardPlan(cfg.Engine)
	res := &Result{}
	t0 := time.Now()
	baseState, stats := solveCommon(rep.Base, cfg)
	res.Cost.InitialCompute = time.Since(t0)
	res.Work.Add(stats)
	hops := obs.HopSeconds("work-sharing")

	if sched.Root.IsLeaf() {
		// Single-snapshot window: the common graph is the snapshot.
		res.Snapshots = append(res.Snapshots, snapshotResult(0, baseState, cfg.KeepValues))
		return res, nil
	}

	// Materialize the labels of every grid edge the plan uses, in one pass
	// over the TG's runs.
	tL := time.Now()
	labels := tg.Labels(sched.GridEdges())
	res.Cost.OverlayBuild += time.Since(tL)

	// The DFS carries the batches accumulated from the root both as raw
	// parts and as a short stack of overlays. Each schedule edge adds one
	// small overlay (O(V + |batch|)); when the stack exceeds
	// maxOverlayDepth the accumulated parts consolidate into a single
	// overlay, so adjacency iteration stays flat without rebuilding the
	// whole accumulated set at every level. The composed set is still
	// "the set of additional edges the snapshot includes" (§4.1) and the
	// base is never mutated.
	var walk func(n *ScheduleNode, st *engine.State, overlays []*delta.Overlay, parts []graph.EdgeList) error
	walk = func(n *ScheduleNode, st *engine.State, overlays []*delta.Overlay, parts []graph.EdgeList) error {
		if n.IsLeaf() {
			res.Snapshots = append(res.Snapshots, snapshotResult(n.I, st, cfg.KeepValues))
			return nil
		}
		for idx, e := range n.Edges {
			// Schedule-edge boundary: cancellation (and armed faults) stop
			// the DFS here, before the edge's batch is streamed.
			if err := checkpoint(cfg.Ctx, faults.CoreSubtreeWalk); err != nil {
				return err
			}
			// A root edge opens one of the independent subtrees — the
			// Table 5 unit this strategy would parallelize — so its whole
			// walk is timed for MaxHopTime and the hop histogram.
			rootEdge := n == sched.Root
			var subtreeStart time.Time
			if rootEdge {
				subtreeStart = time.Now()
			}
			sp := cfg.Trace.StartChild("schedule.edge",
				obs.String("from", nodeRef(n)), obs.String("to", nodeRef(e.To)),
				obs.Int("spans", len(e.Spans)))
			// Gather the labels this edge spans (bypassed nodes contribute
			// their batches here); they are disjoint by construction.
			t1 := time.Now()
			spanLists := make([]graph.EdgeList, 0, len(e.Spans))
			batchLen := 0
			for _, span := range e.Spans {
				spanLists = append(spanLists, labels[span])
				batchLen += len(labels[span])
			}
			childParts := make([]graph.EdgeList, len(parts), len(parts)+len(spanLists))
			copy(childParts, parts)
			childParts = append(childParts, spanLists...)

			var childOverlays []*delta.Overlay
			if e.To.IsLeaf() {
				// The graph at leaf k is exactly base + Δ_ck, and Δ_ck is
				// already materialized canonically in the representation —
				// index it with the fast single-part path instead of
				// scattering the accumulated parts.
				childOverlays = []*delta.Overlay{delta.NewOverlay(rep.N, rep.Deltas[e.To.I])}
			} else {
				childOverlays = make([]*delta.Overlay, len(overlays), len(overlays)+1)
				copy(childOverlays, overlays)
				childOverlays = append(childOverlays, delta.NewOverlayParts(rep.N, spanLists...))
				if len(childOverlays) > maxOverlayDepth {
					childOverlays = []*delta.Overlay{delta.NewOverlayParts(rep.N, childParts...)}
				}
			}
			og := delta.NewOverlayGraph(rep.Base, childOverlays...)
			t2 := time.Now()
			res.Cost.OverlayBuild += t2.Sub(t1)

			child := st
			if idx < len(n.Edges)-1 {
				child = st.Clone() // further siblings still need st
			}
			t3 := time.Now()
			res.Cost.StateClone += t3.Sub(t2)

			s := shard.IncrementalAddParts(og, child, edgeParts(spanLists), cfg.Engine.WithSpan(sp))
			res.Cost.IncrementalAdd += time.Since(t3)
			sp.SetAttr(obs.Int("batch", batchLen))
			sp.End()
			res.Work.Add(s)
			res.AdditionsProcessed += int64(batchLen)
			if err := walk(e.To, child, childOverlays, childParts); err != nil {
				return err
			}
			if rootEdge {
				d := time.Since(subtreeStart)
				hops.Observe(d)
				if d > res.MaxHopTime {
					res.MaxHopTime = d
				}
			}
		}
		return nil
	}
	// The walk runs panic-contained: a panicking subtree (a bug, or an
	// armed Panic-mode fault) surfaces as a *PanicError instead of killing
	// the calling service.
	err := func() (err error) {
		defer recoverToError(&err)
		return walk(sched.Root, baseState, nil, nil)
	}()
	if err != nil {
		return nil, err
	}
	// Snapshots arrive in DFS order; restore window order.
	ordered := make([]SnapshotResult, len(res.Snapshots))
	for _, s := range res.Snapshots {
		ordered[s.Index] = s
	}
	res.Snapshots = ordered
	return res, nil
}

// EvaluateWorkSharing is the one-call §3.2 pipeline: build the TG, solve
// the Steiner tree (greedy Algorithm 1, or the interval DP when
// cfg.OptimalSchedule is set), compress, and execute.
func EvaluateWorkSharing(rep *Rep, cfg Config) (*Result, *Schedule, error) {
	tg, err := BuildTG(rep.Window)
	if err != nil {
		return nil, nil, err
	}
	sched, err := NewSchedule(tg, solveSchedule(tg, cfg))
	if err != nil {
		return nil, nil, err
	}
	res, err := WorkSharing(rep, tg, sched, cfg)
	return res, sched, err
}

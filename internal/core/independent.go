package core

import (
	"time"

	"commongraph/internal/faults"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
	"commongraph/internal/shard"
)

// Independent evaluates the query on every snapshot of the window from
// scratch, each on its own freshly materialized graph — the
// "straightforward approach" of §1 that both streaming and CommonGraph
// improve on. It repeats all subcomputation common to the snapshots and
// pays a full graph construction per snapshot; it exists as the third
// comparison point and as a correctness oracle at scale.
func Independent(w Window, cfg Config) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	hops := obs.HopSeconds("independent")
	for k := 0; k < w.Width(); k++ {
		// Per-snapshot boundary: each from-scratch solve is this
		// strategy's schedule edge, so cancellation is observed here.
		if err := checkpoint(cfg.Ctx, faults.CoreEngineRun); err != nil {
			return nil, err
		}
		edges, err := w.Store.GetVersion(w.From + k)
		if err != nil {
			return nil, err
		}
		sp := cfg.Trace.StartChild("hop", obs.Int("snapshot", k))
		t0 := time.Now()
		// Graph construction is part of this strategy's cost: nothing is
		// shared between snapshots, including the representation.
		pair := graph.NewPair(w.Store.NumVertices(), edges)
		t1 := time.Now()
		res.Cost.OverlayBuild += t1.Sub(t0)

		st, stats := shard.Run(pair, cfg.Algo, cfg.Source, cfg.Engine.WithSpan(sp))
		t2 := time.Now()
		res.Cost.InitialCompute += t2.Sub(t1)
		sp.End()
		hop := t2.Sub(t0)
		hops.Observe(hop)
		if hop > res.MaxHopTime {
			res.MaxHopTime = hop
		}
		res.Work.Add(stats)
		res.Snapshots = append(res.Snapshots, snapshotResult(k, st, cfg.KeepValues))
	}
	return res, nil
}

package core

import (
	"fmt"
	"sort"
	"strings"
)

// Schedule is an executable query evaluation plan: a tree of ScheduleNodes
// rooted at the common graph. Each edge carries the grid edges it spans;
// after compression (Algorithm 1's Compress-Steiner-Tree) an edge may span
// several grid edges whose addition batches are streamed as one merged
// batch.
type Schedule struct {
	Root *ScheduleNode
	// Cost is the total additions across all edges (each shared batch
	// counted once) — the schedule's work-sharing cost metric.
	Cost int64
}

// ScheduleNode is a TG node used by the plan. Leaves (I == J) are the
// window's snapshots.
type ScheduleNode struct {
	I, J  int
	Edges []*ScheduleEdge
}

// IsLeaf reports whether the node is an original snapshot.
func (n *ScheduleNode) IsLeaf() bool { return n.I == n.J }

// ScheduleEdge is one streaming step of the plan.
type ScheduleEdge struct {
	To *ScheduleNode
	// Spans lists the grid edges whose labels this step streams (more
	// than one after bypassing).
	Spans []GridEdge
	// AddCount is the total label size across Spans.
	AddCount int64
}

// NewSchedule converts a Steiner tree into an executable plan and applies
// the bypass compression: any intermediate node with exactly one incoming
// and one outgoing tree edge is elided, and its two batches merge into one
// larger batch (maximizing the parallelism of a single streaming step).
func NewSchedule(tg *TG, t *SteinerTree) (*Schedule, error) {
	if t.W == 1 {
		root := &ScheduleNode{I: 0, J: 0}
		return &Schedule{Root: root}, nil
	}
	if !t.SpansAllLeaves() {
		return nil, fmt.Errorf("core: steiner tree does not span all leaves")
	}
	// Build child lists and in-degrees over the tree's nodes.
	children := map[[2]int][]GridEdge{}
	indeg := map[[2]int]int{}
	for _, e := range t.Edges {
		from := [2]int{e.I, e.J}
		toI, toJ := e.To()
		children[from] = append(children[from], e)
		indeg[[2]int{toI, toJ}]++
	}

	nodes := map[[2]int]*ScheduleNode{}
	var build func(i, j int) *ScheduleNode
	build = func(i, j int) *ScheduleNode {
		key := [2]int{i, j}
		if n, ok := nodes[key]; ok {
			return n
		}
		n := &ScheduleNode{I: i, J: j}
		nodes[key] = n
		for _, ge := range children[key] {
			spans := []GridEdge{ge}
			ti, tj := ge.To()
			// Bypass chains: while the destination is a non-leaf with
			// exactly one incoming and one outgoing tree edge, absorb it.
			for {
				dkey := [2]int{ti, tj}
				if ti == tj || indeg[dkey] != 1 || len(children[dkey]) != 1 {
					break
				}
				next := children[dkey][0]
				spans = append(spans, next)
				ti, tj = next.To()
			}
			edge := &ScheduleEdge{To: build(ti, tj), Spans: spans}
			for _, s := range spans {
				edge.AddCount += tg.LabelSize(s)
			}
			n.Edges = append(n.Edges, edge)
		}
		sort.Slice(n.Edges, func(a, b int) bool {
			ea, eb := n.Edges[a].To, n.Edges[b].To
			if ea.I != eb.I {
				return ea.I < eb.I
			}
			return ea.J < eb.J
		})
		return n
	}
	root := build(0, t.W-1)
	s := &Schedule{Root: root, Cost: t.Cost}
	return s, nil
}

// DirectHopSchedule builds the §3.1 plan: the root fans out straight to
// every leaf; the k-th edge spans the full zigzag path to leaf k, so its
// batch is exactly Δ_ck = E_k \ E_c.
func DirectHopSchedule(tg *TG) *Schedule {
	w := tg.W
	root := &ScheduleNode{I: 0, J: w - 1}
	s := &Schedule{Root: root}
	if w == 1 {
		root.I, root.J = 0, 0
		return s
	}
	for k := 0; k < w; k++ {
		// A canonical root→leaf path: first all right moves to [k, w-1],
		// then left moves down to [k,k]. Any path yields the same batch
		// union; the choice only affects span bookkeeping.
		var spans []GridEdge
		i, j := 0, w-1
		for i < k {
			spans = append(spans, GridEdge{I: i, J: j, Left: false})
			i++
		}
		for j > k {
			spans = append(spans, GridEdge{I: i, J: j, Left: true})
			j--
		}
		edge := &ScheduleEdge{To: &ScheduleNode{I: k, J: k}, Spans: spans}
		for _, sp := range spans {
			edge.AddCount += tg.LabelSize(sp)
		}
		s.Cost += edge.AddCount
		root.Edges = append(root.Edges, edge)
	}
	return s
}

// Leaves returns the schedule's leaf nodes in snapshot order.
func (s *Schedule) Leaves() []*ScheduleNode {
	var out []*ScheduleNode
	var walk func(n *ScheduleNode)
	walk = func(n *ScheduleNode) {
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		for _, e := range n.Edges {
			walk(e.To)
		}
	}
	walk(s.Root)
	sort.Slice(out, func(a, b int) bool { return out[a].I < out[b].I })
	return out
}

// GridEdges returns every grid edge any schedule edge spans.
func (s *Schedule) GridEdges() []GridEdge {
	var out []GridEdge
	var walk func(n *ScheduleNode)
	walk = func(n *ScheduleNode) {
		for _, e := range n.Edges {
			out = append(out, e.Spans...)
			walk(e.To)
		}
	}
	walk(s.Root)
	return out
}

// String renders the plan as an indented tree, for logs and examples.
func (s *Schedule) String() string {
	var b strings.Builder
	var walk func(n *ScheduleNode, depth int)
	walk = func(n *ScheduleNode, depth int) {
		fmt.Fprintf(&b, "%s[%d,%d]\n", strings.Repeat("  ", depth), n.I, n.J)
		for _, e := range n.Edges {
			fmt.Fprintf(&b, "%s+%d additions ->\n", strings.Repeat("  ", depth+1), e.AddCount)
			walk(e.To, depth+1)
		}
	}
	walk(s.Root, 0)
	return b.String()
}

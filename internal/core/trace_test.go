package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/obs"
)

// scheduleEdgeRefs enumerates every edge of the schedule tree by the
// nodeRef of its destination — unique because each tree node has exactly
// one incoming edge.
func scheduleEdgeRefs(sched *Schedule) map[string]bool {
	refs := make(map[string]bool)
	var walk func(n *ScheduleNode)
	walk = func(n *ScheduleNode) {
		for _, e := range n.Edges {
			refs[nodeRef(e.To)] = false
			walk(e.To)
		}
	}
	walk(sched.Root)
	return refs
}

// TestWorkSharingParallelTraceCoversEverySchedule runs the parallel
// Work-Sharing strategy over a ≥8-snapshot window with tracing on and
// proves the trace is complete at schedule granularity: one common.solve
// span, one subtree span per root edge, and a schedule.edge span whose
// "to" attribute names each edge of the executed plan — then that the
// export is well-formed Chrome trace_event JSON with the same events.
func TestWorkSharingParallelTraceCoversEverySchedule(t *testing.T) {
	s, _ := randomStore(77, 8, 60, 60) // 9 snapshots
	w := Window{Store: s, From: 0, To: 8}
	rep, err := BuildRep(w)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	root := tr.StartSpan("evaluate")
	cfg := Config{Algo: algo.BFS{}, Source: 0, Trace: root}
	res, sched, err := EvaluateWorkSharingParallel(rep, cfg)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 9 {
		t.Fatalf("snapshots=%d", len(res.Snapshots))
	}

	refs := scheduleEdgeRefs(sched)
	if len(refs) < 8 {
		t.Fatalf("schedule for width 9 has only %d edges", len(refs))
	}
	var solves, subtrees, edges int
	for _, ev := range tr.Events() {
		switch ev.Name {
		case "common.solve":
			solves++
		case "subtree":
			subtrees++
		case "schedule.edge":
			edges++
			to := ev.Attr("to")
			if _, ok := refs[to]; !ok {
				t.Errorf("schedule.edge span for %q not in the executed plan", to)
			}
			refs[to] = true
		}
	}
	for ref, seen := range refs {
		if !seen {
			t.Errorf("schedule edge →%s has no schedule.edge span", ref)
		}
	}
	if solves != 1 {
		t.Errorf("common.solve spans = %d, want 1", solves)
	}
	if subtrees != len(sched.Root.Edges) {
		t.Errorf("subtree spans = %d, want one per root edge (%d)", subtrees, len(sched.Root.Edges))
	}
	if edges != len(refs) {
		t.Errorf("schedule.edge spans = %d, plan edges = %d", edges, len(refs))
	}

	// The Chrome export must parse and carry every buffered event.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("Chrome trace does not parse: %v", err)
	}
	if len(out.TraceEvents) != len(tr.Events()) {
		t.Fatalf("exported %d events, buffered %d", len(out.TraceEvents), len(tr.Events()))
	}
	for _, ce := range out.TraceEvents {
		if ce.Phase != "X" && ce.Phase != "i" {
			t.Fatalf("unexpected trace_event phase %q", ce.Phase)
		}
	}
}

// TestDisabledTracerEmitsNothing pins the free default: with no tracer
// configured the same evaluation records zero events and allocates no
// span machinery (the nil fast path the hot loops rely on).
func TestDisabledTracerEmitsNothing(t *testing.T) {
	s, _ := randomStore(78, 8, 40, 40)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 8})
	if err != nil {
		t.Fatal(err)
	}
	var tr *obs.Tracer // nil: disabled
	root := tr.StartSpan("evaluate")
	if root != nil {
		t.Fatal("nil tracer must return nil spans")
	}
	if _, _, err := EvaluateWorkSharingParallel(rep, Config{Algo: algo.BFS{}, Source: 0, Trace: root}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("disabled tracer recorded %d events", len(got))
	}
}

// Package core implements the paper's contribution: the CommonGraph
// representation of an evolving-graph window, the Direct-Hop evaluation
// schedule (§3.1), the Triangular Grid with Steiner-tree work sharing
// (§3.2, Algorithm 1), and the mutation-free evaluators built on overlay
// graphs (§4).
package core

import (
	"fmt"
	"sync"

	"commongraph/internal/delta"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
	"commongraph/internal/snapshot"
)

// Window designates the snapshot range [From, To] (inclusive) of an
// evolving-graph store that a query targets.
type Window struct {
	Store *snapshot.Store
	From  int
	To    int
}

// Width returns the number of snapshots in the window.
func (w Window) Width() int { return w.To - w.From + 1 }

// Validate checks the window against its store.
func (w Window) Validate() error {
	if w.Store == nil {
		return fmt.Errorf("core: window has no store")
	}
	if w.From < 0 || w.To >= w.Store.NumVersions() || w.From > w.To {
		return fmt.Errorf("core: window [%d,%d] invalid for store with %d versions",
			w.From, w.To, w.Store.NumVersions())
	}
	return nil
}

// additions and deletions return the batch of window-relative transition t
// (snapshot From+t → From+t+1).
func (w Window) additions(t int) graph.EdgeList { return w.Store.Additions(w.From + t).Edges() }
func (w Window) deletions(t int) graph.EdgeList { return w.Store.Deletions(w.From + t).Edges() }

// Rep is the CommonGraph representation of a window: the common graph
// (edges present in every snapshot of the window) as an immutable CSR
// pair, plus one addition batch per snapshot that turns the common graph
// into that snapshot. Reaching any snapshot requires additions only —
// the paper's deletion-to-addition conversion.
type Rep struct {
	Window Window
	N      int
	// Common is the canonical common edge set E_c.
	Common graph.EdgeList
	// Base is E_c in traversal form; it is never mutated.
	Base *graph.Pair
	// Deltas[k] = E_{From+k} \ E_c: the Direct-Hop addition batch for the
	// k-th snapshot of the window.
	Deltas []*delta.Batch

	// shardMu guards shardPlans, the per-shard-count memo of degree cuts
	// over Base. Memoizing on the rep means every pass of one evaluation
	// — and every ICG edge of a Work-Sharing schedule, and every query
	// sharing this rep through the plan cache — reuses one plan instead
	// of re-cutting per pass.
	shardMu    sync.Mutex
	shardPlans map[int][]graph.VertexID
}

// ShardStarts returns the memoized degree-balanced shard cut points for
// this rep's base graph at the given shard count (len shards+1; see
// graph.DegreeCuts). Safe for concurrent use; the returned slice is
// immutable by contract.
func (r *Rep) ShardStarts(shards int) []graph.VertexID {
	r.shardMu.Lock()
	defer r.shardMu.Unlock()
	if p, ok := r.shardPlans[shards]; ok {
		return p
	}
	if r.shardPlans == nil {
		r.shardPlans = make(map[int][]graph.VertexID)
	}
	p := graph.DegreeCuts(r.Base.Out.Offsets(), shards)
	r.shardPlans[shards] = p
	return p
}

// pinShardPlan fills opt.ShardPlan from the rep's memo when sharding is
// on and the caller did not pin a plan already. Every strategy entry
// calls it once, so all passes of one evaluation share cuts.
func (r *Rep) pinShardPlan(opt engine.Options) engine.Options {
	if opt.Shards > 1 && len(opt.ShardPlan) == 0 {
		opt.ShardPlan = r.ShardStarts(opt.Shards)
	}
	return opt
}

// BuildRep constructs the CommonGraph representation of a window.
//
// E_c = E_From \ (∪ Δ−_t over the window's transitions): an edge fails to
// be in every snapshot exactly when it is deleted at some transition
// (covering delete-then-re-add) or first added mid-window.
func BuildRep(w Window) (*Rep, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	first, err := w.Store.GetVersion(w.From)
	if err != nil {
		return nil, err
	}
	width := w.Width()
	allDels := graph.EdgeList{}
	for t := 0; t < width-1; t++ {
		allDels = graph.Union(allDels, w.deletions(t))
	}
	common := graph.Minus(first, allDels)

	r := &Rep{
		Window: w,
		N:      w.Store.NumVertices(),
		Common: common,
		Base:   graph.NewPair(w.Store.NumVertices(), common),
		Deltas: make([]*delta.Batch, width),
	}
	// The per-snapshot delta evolves by the window's own batches:
	// D_0 = E_From \ E_c = E_From ∩ allDels, and
	// D_{k+1} = (D_k \ Δ−_k) ∪ Δ+_k  (added edges are never in E_c).
	// This keeps every step O(|D|) instead of materializing snapshots.
	cur := graph.Intersect(first, allDels)
	var err2 error
	if r.Deltas[0], err2 = delta.FromCanonical(cur); err2 != nil {
		return nil, err2
	}
	for k := 1; k < width; k++ {
		cur = graph.Union(graph.Minus(cur, w.deletions(k-1)), w.additions(k-1))
		if r.Deltas[k], err2 = delta.FromCanonical(cur); err2 != nil {
			return nil, err2
		}
	}
	return r, nil
}

// SnapshotGraph returns the overlay view of the window's k-th snapshot:
// the common base plus that snapshot's Direct-Hop delta. No mutation.
func (r *Rep) SnapshotGraph(k int) *delta.OverlayGraph {
	return delta.NewOverlayGraph(r.Base, delta.NewOverlay(r.N, r.Deltas[k]))
}

// TotalDeltaEdges sums the Direct-Hop addition batches — the total number
// of additions Direct-Hop processes (the "22 additions" of the paper's
// worked example).
func (r *Rep) TotalDeltaEdges() int64 {
	var total int64
	for _, d := range r.Deltas {
		total += int64(d.Len())
	}
	return total
}

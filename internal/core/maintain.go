package core

import (
	"fmt"

	"commongraph/internal/delta"
	"commongraph/internal/faults"
	"commongraph/internal/graph"
)

// MaintainedRep is a CommonGraph representation kept up to date as the
// evolving graph's window moves — the maintenance behaviour §4.1 describes
// ("when new snapshots are created by a stream of batches, the system uses
// the batches to update the common graph"):
//
//   - Append extends the window by the store's next snapshot: edges the
//     new transition deletes leave the common graph and join every
//     snapshot's delta; the new snapshot's delta derives from the last one.
//   - Advance drops the window's oldest snapshot: edges present throughout
//     the remaining window are promoted into the common graph and leave
//     the remaining deltas.
//
// Both updates cost O(|Δ| · width) set work plus one base-CSR rebuild when
// the common edge set actually changed; the result always equals
// BuildRep of the current window (property-tested).
type MaintainedRep struct {
	rep *Rep
}

// NewMaintainedRep builds the representation for an initial window.
func NewMaintainedRep(w Window) (*MaintainedRep, error) {
	rep, err := BuildRep(w)
	if err != nil {
		return nil, err
	}
	return &MaintainedRep{rep: rep}, nil
}

// Rep returns the current representation. The caller must not retain it
// across Append/Advance calls.
func (m *MaintainedRep) Rep() *Rep { return m.rep }

// Window returns the currently covered window.
func (m *MaintainedRep) Window() Window { return m.rep.Window }

// Append extends the window to include the store's next snapshot, which
// must already exist (Store.NewVersion first, then Append).
func (m *MaintainedRep) Append() error {
	if err := faults.Check(faults.CoreMaintainAppend); err != nil {
		return fmt.Errorf("core: maintain append: %w", err)
	}
	w := m.rep.Window
	if w.To+1 >= w.Store.NumVersions() {
		return fmt.Errorf("core: no snapshot beyond %d to append (store has %d versions)",
			w.To, w.Store.NumVersions())
	}
	addBatch := w.Store.Additions(w.To).Edges()
	delBatch := w.Store.Deletions(w.To).Edges()

	// Edges of the common graph deleted by this transition stop being
	// common; they are still present in every *old* snapshot, so they join
	// every old delta.
	leaving := graph.Intersect(m.rep.Common, delBatch)
	newCommon := graph.Minus(m.rep.Common, leaving)

	width := w.Width()
	newDeltas := make([]*delta.Batch, width+1)
	var err error
	for k := 0; k < width; k++ {
		newDeltas[k], err = delta.FromCanonical(graph.Union(m.rep.Deltas[k].Edges(), leaving))
		if err != nil {
			return err
		}
	}
	// The new snapshot: E_new \ E_c' = ((D_last ∪ leaving) \ Δ−) ∪ Δ+.
	last := graph.Union(m.rep.Deltas[width-1].Edges(), leaving)
	newDeltas[width], err = delta.FromCanonical(
		graph.Union(graph.Minus(last, delBatch), addBatch))
	if err != nil {
		return err
	}

	base := m.rep.Base
	if len(leaving) > 0 {
		base = graph.NewPair(m.rep.N, newCommon)
	}
	m.rep = &Rep{
		Window: Window{Store: w.Store, From: w.From, To: w.To + 1},
		N:      m.rep.N,
		Common: newCommon,
		Base:   base,
		Deltas: newDeltas,
	}
	return nil
}

// Advance drops the oldest snapshot from the window. Edges present in
// every remaining snapshot — exactly those in the second snapshot's delta
// that also survive every later snapshot — are promoted into the common
// graph.
func (m *MaintainedRep) Advance() error {
	if err := faults.Check(faults.CoreMaintainAdvance); err != nil {
		return fmt.Errorf("core: maintain advance: %w", err)
	}
	w := m.rep.Window
	if w.Width() <= 1 {
		return fmt.Errorf("core: cannot advance a single-snapshot window")
	}
	width := w.Width()
	// An edge is common to snapshots From+1..To iff it is in every one of
	// their deltas (it is outside the old common graph but present
	// everywhere remaining).
	promoted := m.rep.Deltas[1].Edges()
	for k := 2; k < width && len(promoted) > 0; k++ {
		promoted = graph.Intersect(promoted, m.rep.Deltas[k].Edges())
	}
	if width == 1 {
		promoted = nil
	}

	newCommon := graph.Union(m.rep.Common, promoted)
	newDeltas := make([]*delta.Batch, width-1)
	for k := 1; k < width; k++ {
		d, err := delta.FromCanonical(graph.Minus(m.rep.Deltas[k].Edges(), promoted))
		if err != nil {
			return err
		}
		newDeltas[k-1] = d
	}
	base := m.rep.Base
	if len(promoted) > 0 {
		base = graph.NewPair(m.rep.N, newCommon)
	}
	m.rep = &Rep{
		Window: Window{Store: w.Store, From: w.From + 1, To: w.To},
		N:      m.rep.N,
		Common: newCommon,
		Base:   base,
		Deltas: newDeltas,
	}
	return nil
}

// Slide is Append followed by Advance: the window keeps its width while
// tracking the newest snapshot. It is atomic: if the Advance half fails
// after the Append succeeded, the maintained window rolls back to its
// pre-Slide state (every update builds a fresh Rep and swaps the pointer,
// so the saved representation is still exact), leaving no half-moved
// window behind.
func (m *MaintainedRep) Slide() error {
	saved := m.rep
	if err := m.Append(); err != nil {
		return err
	}
	if err := m.Advance(); err != nil {
		m.rep = saved
		return fmt.Errorf("core: slide rolled back: %w", err)
	}
	return nil
}

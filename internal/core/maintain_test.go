package core

import (
	"testing"
	"testing/quick"

	"commongraph/internal/algo"
	"commongraph/internal/engine"
	"commongraph/internal/graph"
)

// repEqual compares a maintained representation against a from-scratch
// BuildRep of the same window.
func repEqual(t *testing.T, got, want *Rep) bool {
	t.Helper()
	if got.Window != want.Window {
		t.Logf("window %+v vs %+v", got.Window, want.Window)
		return false
	}
	if !graph.Equal(got.Common, want.Common) {
		t.Logf("common differs: %d vs %d edges", len(got.Common), len(want.Common))
		return false
	}
	if len(got.Deltas) != len(want.Deltas) {
		return false
	}
	for k := range got.Deltas {
		if !graph.Equal(got.Deltas[k].Edges(), want.Deltas[k].Edges()) {
			t.Logf("delta %d differs", k)
			return false
		}
	}
	// Base must present exactly the common edges.
	if got.Base.NumEdges() != len(got.Common) {
		t.Logf("base has %d edges, common %d", got.Base.NumEdges(), len(got.Common))
		return false
	}
	return true
}

func TestMaintainedAppendMatchesRebuild(t *testing.T) {
	s, _ := randomStore(101, 8, 40, 40)
	m, err := NewMaintainedRep(Window{Store: s, From: 0, To: 2})
	if err != nil {
		t.Fatal(err)
	}
	for to := 3; to <= 8; to++ {
		if err := m.Append(); err != nil {
			t.Fatal(err)
		}
		want, err := BuildRep(Window{Store: s, From: 0, To: to})
		if err != nil {
			t.Fatal(err)
		}
		if !repEqual(t, m.Rep(), want) {
			t.Fatalf("append to %d diverged from rebuild", to)
		}
	}
	if err := m.Append(); err == nil {
		t.Fatal("append past the store's last version should fail")
	}
}

func TestMaintainedAdvanceMatchesRebuild(t *testing.T) {
	s, _ := randomStore(103, 8, 40, 40)
	m, err := NewMaintainedRep(Window{Store: s, From: 0, To: 8})
	if err != nil {
		t.Fatal(err)
	}
	for from := 1; from <= 8; from++ {
		if err := m.Advance(); err != nil {
			t.Fatal(err)
		}
		want, err := BuildRep(Window{Store: s, From: from, To: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !repEqual(t, m.Rep(), want) {
			t.Fatalf("advance to %d diverged from rebuild", from)
		}
	}
	// The window is now the single snapshot [8,8].
	if err := m.Advance(); err == nil {
		t.Fatal("advancing a single-snapshot window should fail")
	}
}

func TestMaintainedSlideProperty(t *testing.T) {
	// Random mixes of Append/Advance/Slide always equal a rebuild.
	f := func(seed int64) bool {
		s, _ := randomStore(uint64(seed), 10, 30, 30)
		m, err := NewMaintainedRep(Window{Store: s, From: 0, To: 3})
		if err != nil {
			return false
		}
		ops := uint64(seed)
		for i := 0; i < 6; i++ {
			switch ops % 3 {
			case 0:
				if m.Window().To+1 < s.NumVersions() {
					if err := m.Append(); err != nil {
						return false
					}
				}
			case 1:
				if m.Window().Width() > 1 {
					if err := m.Advance(); err != nil {
						return false
					}
				}
			default:
				if m.Window().To+1 < s.NumVersions() && m.Window().Width() > 0 {
					if err := m.Slide(); err != nil {
						return false
					}
				}
			}
			ops /= 3
			want, err := BuildRep(m.Window())
			if err != nil {
				return false
			}
			if !repEqual(t, m.Rep(), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainedRepEvaluates(t *testing.T) {
	// The maintained representation must be directly usable by the
	// evaluators after sliding.
	s, n := randomStore(107, 8, 40, 40)
	m, err := NewMaintainedRep(Window{Store: s, From: 0, To: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := m.Slide(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := DirectHop(m.Rep(), Config{Algo: algo.SSSP{}, Source: 0, KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}
	w := m.Window()
	for k := 0; k < w.Width(); k++ {
		snap, _ := s.GetVersion(w.From + k)
		ref := engineReference(n, snap)
		for v := 0; v < n; v++ {
			if res.Snapshots[k].Values[v] != ref[v] {
				t.Fatalf("snapshot %d vertex %d differs", k, v)
			}
		}
	}
}

// engineReference is a tiny local oracle wrapper (SSSP from vertex 0).
func engineReference(n int, edges graph.EdgeList) []algo.Value {
	return referenceSSSP(n, edges)
}

// referenceSSSP runs the engine's oracle for SSSP from vertex 0.
func referenceSSSP(n int, edges graph.EdgeList) []algo.Value {
	return engine.Reference(graph.NewPair(n, edges), algo.SSSP{}, 0)
}

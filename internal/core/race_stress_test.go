package core

import (
	"sync"
	"testing"

	"commongraph/internal/algo"
)

// TestWorkSharingParallelRaceStress is the CI race gate for the §5
// parallel executor: a wide window (W = 11 ≥ 8) evaluated with
// Parallelism 1, 2, and unbounded — all three variants running
// concurrently against the same shared representation — must reproduce
// the sequential WorkSharing result exactly. Run under -race this
// exercises the subtree fan-out, the shared-Result mutex, and the
// read-only sharing of the base CSR, labels, and schedule.
func TestWorkSharingParallelRaceStress(t *testing.T) {
	s, n := randomStore(311, 10, 60, 60)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 10})
	if err != nil {
		t.Fatal(err)
	}
	tg, err := BuildTG(rep.Window)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewSchedule(tg, SteinerGreedy(tg))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []algo.Algorithm{algo.BFS{}, algo.SSSP{}, algo.SSWP{}} {
		cfg := Config{Algo: a, Source: 0, KeepValues: true}
		seq, err := WorkSharing(rep, tg, sched, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// All parallelism levels at once: the variants share rep, tg,
		// labels, and sched, so any illegal mutation of shared state
		// trips the race detector here.
		results := make([]*Result, 3)
		errs := make([]error, 3)
		var wg sync.WaitGroup
		for i, par := range []int{1, 2, 0} {
			wg.Add(1)
			go func(i, par int) {
				defer wg.Done()
				c := cfg
				c.Parallelism = par
				results[i], errs[i] = WorkSharingParallel(rep, tg, sched, c)
			}(i, par)
		}
		wg.Wait()
		for i, par := range []int{1, 2, 0} {
			if errs[i] != nil {
				t.Fatalf("%s parallelism=%d: %v", a.Name(), par, errs[i])
			}
			got := results[i]
			if len(got.Snapshots) != len(seq.Snapshots) {
				t.Fatalf("%s: snapshot count %d vs %d", a.Name(), len(got.Snapshots), len(seq.Snapshots))
			}
			for k := range seq.Snapshots {
				if seq.Snapshots[k].Checksum != got.Snapshots[k].Checksum {
					t.Fatalf("%s parallelism=%d: snapshot %d checksum differs", a.Name(), par, k)
				}
				for v := 0; v < n; v++ {
					if seq.Snapshots[k].Values[v] != got.Snapshots[k].Values[v] {
						t.Fatalf("%s parallelism=%d: snapshot %d vertex %d differs",
							a.Name(), par, k, v)
					}
				}
			}
		}
	}
}

// TestEvaluateManyRaceStress runs several EvaluateMany batches
// concurrently over one shared representation and checks every query
// against its own sequential WorkSharing evaluation.
func TestEvaluateManyRaceStress(t *testing.T) {
	s, n := randomStore(313, 8, 50, 50)
	rep, err := BuildRep(Window{Store: s, From: 0, To: 8})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Config{
		{Algo: algo.BFS{}, Source: 0, KeepValues: true},
		{Algo: algo.SSSP{}, Source: 3, KeepValues: true},
		{Algo: algo.SSWP{}, Source: 7, KeepValues: true},
	}
	const rounds = 3
	all := make([][]*Result, rounds)
	errs := make([]error, rounds)
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			all[r], _, errs[r] = EvaluateMany(rep, queries)
		}(r)
	}
	wg.Wait()

	tg, err := BuildTG(rep.Window)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewSchedule(tg, SteinerGreedy(tg))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		if errs[r] != nil {
			t.Fatalf("round %d: %v", r, errs[r])
		}
		for qi, q := range queries {
			seq, err := WorkSharing(rep, tg, sched, q)
			if err != nil {
				t.Fatal(err)
			}
			got := all[r][qi]
			for k := range seq.Snapshots {
				if seq.Snapshots[k].Checksum != got.Snapshots[k].Checksum {
					t.Fatalf("round %d query %d: snapshot %d checksum differs", r, qi, k)
				}
				for v := 0; v < n; v++ {
					if seq.Snapshots[k].Values[v] != got.Snapshots[k].Values[v] {
						t.Fatalf("round %d query %d: snapshot %d vertex %d differs", r, qi, k, v)
					}
				}
			}
		}
	}
}

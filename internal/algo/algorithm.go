// Package algo defines the monotonic vertex algorithms of the paper's
// Table 3 — BFS, SSSP, SSWP, SSNP, and Viterbi — behind one Algorithm
// interface. All are "monotonic" in KickStarter's sense: a vertex's value
// only ever improves along a fixed total order, which is what makes
// incremental edge addition cheap and makes deletion require trimming.
package algo

import "commongraph/internal/graph"

// Value is a vertex value. It is 32 bits so the engine can pack
// (value, parent) into one atomically-updatable 64-bit word, which keeps
// the dependence tree consistent under parallel updates.
//
// BFS/SSSP/SSWP/SSNP use plain integer distances/widths; Viterbi uses
// Q2.30 fixed-point path probabilities (see FixedOne).
type Value int32

// Infinity and NegInfinity are the extreme values; each algorithm's
// Identity (the "no path" value) is one of them.
const (
	Infinity    Value = 1<<31 - 1
	NegInfinity Value = -(1<<31 - 1)
)

// Direction says which way values improve.
type Direction int

const (
	// Minimize: smaller values are better (BFS, SSSP, SSNP).
	Minimize Direction = iota
	// Maximize: larger values are better (SSWP, Viterbi).
	Maximize
)

// Algorithm is one monotonic vertex program. Implementations are stateless
// and safe for concurrent use.
type Algorithm interface {
	// Name returns the paper's abbreviation (e.g. "SSSP").
	Name() string
	// Direction returns the improvement direction of the value order.
	Direction() Direction
	// Identity is the worst possible value: the value of an unreached
	// vertex. Propagate is never called with uval == Identity.
	Identity() Value
	// SourceValue is the query source's initial value.
	SourceValue() Value
	// Propagate computes the value edge (u,v) with weight w offers to v,
	// given u's current value. This is the EdgeFunction of Table 3 minus
	// the CAS, which the engine performs.
	Propagate(uval Value, w graph.Weight) Value
}

// Better reports whether a improves on b under the algorithm's direction.
func Better(a Algorithm, x, y Value) bool {
	if a.Direction() == Minimize {
		return x < y
	}
	return x > y
}

// All returns the five benchmark algorithms in the paper's order.
func All() []Algorithm {
	return []Algorithm{BFS{}, SSSP{}, SSWP{}, SSNP{}, Viterbi{}}
}

// ByName returns the named algorithm, or false.
func ByName(name string) (Algorithm, bool) {
	for _, a := range All() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

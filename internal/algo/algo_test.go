package algo

import (
	"testing"
	"testing/quick"

	"commongraph/internal/graph"
)

func TestAllFive(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		names[a.Name()] = true
	}
	for _, want := range []string{"BFS", "SSSP", "SSWP", "SSNP", "Viterbi"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
	if len(names) != 5 {
		t.Fatalf("want 5 algorithms, got %d", len(names))
	}
}

func TestByName(t *testing.T) {
	a, ok := ByName("SSWP")
	if !ok || a.Name() != "SSWP" {
		t.Fatal("ByName(SSWP) failed")
	}
	if _, ok := ByName("PageRank"); ok {
		t.Fatal("phantom algorithm")
	}
}

func TestBFSSemantics(t *testing.T) {
	b := BFS{}
	if b.Propagate(0, 99) != 1 || b.Propagate(7, 1) != 8 {
		t.Fatal("BFS propagate wrong")
	}
	if !Better(b, 3, 4) || Better(b, 4, 3) || Better(b, 4, 4) {
		t.Fatal("BFS order wrong")
	}
	if b.SourceValue() != 0 || b.Identity() != Infinity {
		t.Fatal("BFS init wrong")
	}
}

func TestSSSPSemantics(t *testing.T) {
	s := SSSP{}
	if s.Propagate(10, 5) != 15 {
		t.Fatal("SSSP propagate wrong")
	}
	if s.Direction() != Minimize {
		t.Fatal("SSSP direction")
	}
}

func TestSSWPSemantics(t *testing.T) {
	s := SSWP{}
	// Width of a path is the min edge weight; source has infinite width.
	if s.Propagate(Infinity, 7) != 7 {
		t.Fatal("width from source should be edge weight")
	}
	if s.Propagate(3, 7) != 3 {
		t.Fatal("width should be min(val, w)")
	}
	if s.Propagate(9, 2) != 2 {
		t.Fatal("width should be min(val, w)")
	}
	if !Better(s, 5, 3) || Better(s, 3, 5) {
		t.Fatal("SSWP order wrong (should maximize)")
	}
	if s.Identity() != 0 {
		t.Fatal("SSWP identity")
	}
}

func TestSSNPSemantics(t *testing.T) {
	s := SSNP{}
	// Narrowness is the max edge weight; source contributes 0.
	if s.Propagate(0, 7) != 7 {
		t.Fatal("narrowness from source should be edge weight")
	}
	if s.Propagate(9, 2) != 9 || s.Propagate(2, 9) != 9 {
		t.Fatal("narrowness should be max(val, w)")
	}
	if !Better(s, 3, 5) {
		t.Fatal("SSNP order wrong (should minimize)")
	}
}

func TestViterbiSemantics(t *testing.T) {
	v := Viterbi{}
	if v.SourceValue() != FixedOne {
		t.Fatal("source probability should be 1.0")
	}
	// Probability decreases monotonically with weight.
	if v.Prob(1) <= v.Prob(50) || v.Prob(50) <= v.Prob(100) {
		t.Fatal("Prob not decreasing in weight")
	}
	// p ∈ (0, 1].
	for w := graph.Weight(0); w <= 300; w += 10 {
		p := v.Prob(w)
		if p <= 0 || p > FixedOne {
			t.Fatalf("Prob(%d)=%d out of range", w, p)
		}
	}
	// Multiplying probabilities can only shrink the value.
	if got := v.Propagate(FixedOne, 1); got > FixedOne || got <= 0 {
		t.Fatalf("Propagate(1.0, 1) = %d", got)
	}
	// Chain of propagations decays toward zero but stays non-negative.
	val := FixedOne
	for i := 0; i < 100; i++ {
		val = v.Propagate(val, 100)
	}
	if val < 0 {
		t.Fatal("probability went negative")
	}
	if !Better(v, FixedOne, val) {
		t.Fatal("Viterbi should prefer higher probability")
	}
}

func TestViterbiPropagateMonotone(t *testing.T) {
	v := Viterbi{}
	f := func(raw int32, wRaw uint8) bool {
		uval := Value(raw)
		if uval <= 0 || uval > FixedOne {
			uval = FixedOne/2 + Value(uint32(raw)%uint32(FixedOne/2))
		}
		w := graph.Weight(wRaw%100 + 1)
		out := v.Propagate(uval, w)
		// Result never exceeds the input value and never goes negative.
		return out >= 0 && out <= uval
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropagateNeverCalledWithIdentityContract(t *testing.T) {
	// Documented contract: the engine guards Propagate from identity
	// inputs. This test pins the identity values the engine checks for.
	for _, a := range All() {
		id := a.Identity()
		switch a.Direction() {
		case Minimize:
			if id != Infinity && a.Name() != "SSNP" {
				t.Fatalf("%s: minimizing identity should be Infinity", a.Name())
			}
		case Maximize:
			if id >= a.SourceValue() {
				t.Fatalf("%s: identity should be worse than source", a.Name())
			}
		}
	}
}

func TestBetterStrict(t *testing.T) {
	for _, a := range All() {
		if Better(a, 5, 5) {
			t.Fatalf("%s: Better must be strict", a.Name())
		}
	}
}

package algo

import "commongraph/internal/graph"

// This file holds monotonic algorithms beyond the paper's Table 3 — the
// KickStarter/CommonGraph machinery works for any vertex program whose
// values only improve along a fixed order, and these exercise corners the
// benchmark five do not (boolean lattices, bounded propagation).

// Reachability marks vertices reachable from the source: values are 1
// (source) down to... in practice either Identity (unreached) or 0
// (reached); CASMIN(Val(v), Val(u)). It is BFS collapsed to a two-level
// lattice, so incremental addition converges in a single wave.
type Reachability struct{}

// Name implements Algorithm.
func (Reachability) Name() string { return "Reach" }

// Direction implements Algorithm.
func (Reachability) Direction() Direction { return Minimize }

// Identity implements Algorithm.
func (Reachability) Identity() Value { return Infinity }

// SourceValue implements Algorithm.
func (Reachability) SourceValue() Value { return 0 }

// Propagate implements Algorithm.
func (Reachability) Propagate(uval Value, _ graph.Weight) Value {
	return uval // reachability spreads the value unchanged
}

// HopLimit is BFS that stops propagating past K hops: distances above K
// collapse to the identity, so the query answers "which vertices are
// within K hops?" — a monotonic bounded-radius query that keeps the
// trimming machinery honest about vertices that fall off the horizon.
type HopLimit struct {
	// K is the horizon; vertices farther than K hops stay unreached.
	K Value
}

// Name implements Algorithm.
func (h HopLimit) Name() string { return "HopLimit" }

// Direction implements Algorithm.
func (HopLimit) Direction() Direction { return Minimize }

// Identity implements Algorithm.
func (HopLimit) Identity() Value { return Infinity }

// SourceValue implements Algorithm.
func (HopLimit) SourceValue() Value { return 0 }

// Propagate implements Algorithm.
func (h HopLimit) Propagate(uval Value, _ graph.Weight) Value {
	next := uval + 1
	if next > h.K {
		return Infinity // beyond the horizon: never an improvement
	}
	return next
}

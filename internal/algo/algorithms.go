package algo

import "commongraph/internal/graph"

// BFS computes hop distance from the source:
// CASMIN(Val(v), Val(u) + 1). Table 3, row 1.
type BFS struct{}

// Name implements Algorithm.
func (BFS) Name() string { return "BFS" }

// Direction implements Algorithm.
func (BFS) Direction() Direction { return Minimize }

// Identity implements Algorithm.
func (BFS) Identity() Value { return Infinity }

// SourceValue implements Algorithm.
func (BFS) SourceValue() Value { return 0 }

// Propagate implements Algorithm.
func (BFS) Propagate(uval Value, _ graph.Weight) Value {
	return uval + 1
}

// SSSP computes shortest weighted path distance:
// CASMIN(Val(v), Val(u) + wt(u,v)). Table 3, row 4.
type SSSP struct{}

// Name implements Algorithm.
func (SSSP) Name() string { return "SSSP" }

// Direction implements Algorithm.
func (SSSP) Direction() Direction { return Minimize }

// Identity implements Algorithm.
func (SSSP) Identity() Value { return Infinity }

// SourceValue implements Algorithm.
func (SSSP) SourceValue() Value { return 0 }

// Propagate implements Algorithm.
func (SSSP) Propagate(uval Value, w graph.Weight) Value {
	return uval + Value(w)
}

// SSWP computes the widest path (maximize the minimum edge weight along
// the path): CASMAX(Val(v), min(Val(u), wt(u,v))). Table 3, row 2.
type SSWP struct{}

// Name implements Algorithm.
func (SSWP) Name() string { return "SSWP" }

// Direction implements Algorithm.
func (SSWP) Direction() Direction { return Maximize }

// Identity implements Algorithm.
func (SSWP) Identity() Value { return 0 }

// SourceValue implements Algorithm.
func (SSWP) SourceValue() Value { return Infinity }

// Propagate implements Algorithm.
func (SSWP) Propagate(uval Value, w graph.Weight) Value {
	if Value(w) < uval {
		return Value(w)
	}
	return uval
}

// SSNP computes the narrowest path (minimize the maximum edge weight
// along the path): CASMIN(Val(v), max(Val(u), wt(u,v))). Table 3, row 3.
type SSNP struct{}

// Name implements Algorithm.
func (SSNP) Name() string { return "SSNP" }

// Direction implements Algorithm.
func (SSNP) Direction() Direction { return Minimize }

// Identity implements Algorithm.
func (SSNP) Identity() Value { return Infinity }

// SourceValue implements Algorithm.
func (SSNP) SourceValue() Value { return 0 }

// Propagate implements Algorithm.
func (SSNP) Propagate(uval Value, w graph.Weight) Value {
	if Value(w) > uval {
		return Value(w)
	}
	return uval
}

// FixedOne is probability 1.0 in the Q2.30 fixed-point representation
// Viterbi uses for path probabilities.
const FixedOne Value = 1 << 30

// Viterbi computes the most probable path: each edge has a transition
// probability in (0, 1] and the path probability is the product;
// CASMAX(Val(v), Val(u) · p(u,v)). Table 3, row 5.
//
// Probabilities are Q2.30 fixed point so values fit the engine's packed
// 32-bit representation; the edge's integer weight w ∈ [1, 100] maps to
// p(w) = 1 − w/256 ∈ [0.61, 0.996], a deterministic skew comparable to
// the paper's probability-weighted graphs.
type Viterbi struct{}

// Name implements Algorithm.
func (Viterbi) Name() string { return "Viterbi" }

// Direction implements Algorithm.
func (Viterbi) Direction() Direction { return Maximize }

// Identity implements Algorithm.
func (Viterbi) Identity() Value { return 0 }

// SourceValue implements Algorithm.
func (Viterbi) SourceValue() Value { return FixedOne }

// Prob converts an integer edge weight into a Q2.30 probability.
func (Viterbi) Prob(w graph.Weight) Value {
	if w < 0 {
		w = 0
	}
	if w > 255 {
		w = 255
	}
	return FixedOne - Value(w)<<22 // 1 − w/256
}

// Propagate implements Algorithm.
func (v Viterbi) Propagate(uval Value, w graph.Weight) Value {
	p := int64(v.Prob(w))
	return Value((int64(uval) * p) >> 30)
}

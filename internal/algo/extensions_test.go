package algo

import "testing"

func TestReachabilitySemantics(t *testing.T) {
	r := Reachability{}
	if r.Name() != "Reach" || r.Direction() != Minimize {
		t.Fatal("metadata wrong")
	}
	if r.Propagate(0, 99) != 0 {
		t.Fatal("reachability should spread the value unchanged")
	}
	if !Better(r, 0, Infinity) {
		t.Fatal("reached must beat unreached")
	}
	if Better(r, 0, 0) {
		t.Fatal("Better must be strict")
	}
}

func TestHopLimitSemantics(t *testing.T) {
	h := HopLimit{K: 3}
	if h.Propagate(0, 1) != 1 || h.Propagate(2, 1) != 3 {
		t.Fatal("within-horizon propagation wrong")
	}
	if h.Propagate(3, 1) != Infinity {
		t.Fatal("beyond-horizon propagation must collapse to identity")
	}
	// A value of Infinity is never an improvement, so the horizon is a
	// hard stop.
	if Better(h, h.Propagate(3, 1), Infinity) {
		t.Fatal("horizon overflow treated as improvement")
	}
}

func TestHopLimitZero(t *testing.T) {
	h := HopLimit{K: 0}
	if h.Propagate(0, 1) != Infinity {
		t.Fatal("K=0 should reach only the source")
	}
}

func TestExtensionsNotInPaperSet(t *testing.T) {
	for _, a := range All() {
		if a.Name() == "Reach" || a.Name() == "HopLimit" {
			t.Fatalf("extension %s leaked into the Table 3 set", a.Name())
		}
	}
}

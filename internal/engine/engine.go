package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// Mode selects the scheduler policy of §4.3: synchronous level-barriered
// iterations for large frontiers, or an asynchronous worklist where an
// update becomes visible within the current pass, which is faster for the
// small frontiers typical of incremental batches.
type Mode int

const (
	// Auto picks Async when the seed frontier is below AsyncThreshold,
	// Sync otherwise (the paper's scheduler policy).
	Auto Mode = iota
	// Sync runs barrier-separated parallel iterations.
	Sync
	// Async runs a FIFO worklist to fixpoint with immediate visibility.
	Async
)

// Options tunes an engine run.
type Options struct {
	// Workers is the parallel width for Sync iterations; 0 means
	// GOMAXPROCS. Async runs are sequential by design.
	Workers int
	// Mode selects the scheduler (default Auto).
	Mode Mode
	// AsyncThreshold is the seed-frontier size below which Auto chooses
	// Async; 0 means DefaultAsyncThreshold.
	AsyncThreshold int
	// Span, when non-nil, is the caller's trace span: each Run /
	// IncrementalAddParts emits one child span carrying its Stats. Spans
	// are per engine pass, never per vertex — the hot loop stays
	// untouched, and a nil Span costs one pointer test per pass.
	Span *obs.Span
}

// WithSpan returns a copy of the options with the trace span replaced —
// the executors stamp their current schedule-edge span onto the engine
// pass they are about to run.
func (o Options) WithSpan(s *obs.Span) Options {
	o.Span = s
	return o
}

// DefaultAsyncThreshold is the Auto-mode cutover point.
const DefaultAsyncThreshold = 2048

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) threshold() int {
	if o.AsyncThreshold > 0 {
		return o.AsyncThreshold
	}
	return DefaultAsyncThreshold
}

// Stats reports the work an engine pass performed.
type Stats struct {
	Iterations  int   // sync iterations (0 for async runs)
	EdgesPushed int64 // out-edges examined from active vertices
	Improved    int64 // successful value improvements
	Trimmed     int64 // vertices invalidated by deletion trimming
}

// Add accumulates another pass's stats into s.
func (s *Stats) Add(o Stats) {
	s.Iterations += o.Iterations
	s.EdgesPushed += o.EdgesPushed
	s.Improved += o.Improved
	s.Trimmed += o.Trimmed
}

func (s *Stats) add(o Stats) { s.Add(o) }

// Run evaluates the query from scratch: it allocates fresh state with only
// the source set and propagates to fixpoint over g. A from-scratch solve
// touches the whole graph regardless of its one-vertex seed, so Auto mode
// resolves to Sync (level-synchronous parallel iterations) here; pass
// Async explicitly to force the sequential worklist.
func Run(g delta.Graph, a algo.Algorithm, src graph.VertexID, opt Options) (*State, Stats) {
	sp := opt.Span.StartChild("engine.run", obs.String("algo", a.Name()))
	st := NewState(g.NumVertices(), a, src)
	seed := newFrontier(g.NumVertices())
	seed.setSeq(src)
	if opt.Mode == Auto {
		opt.Mode = Sync
	}
	stats := propagate(g, st, seed, opt)
	sp.SetAttr(statAttrs(stats)...)
	sp.End()
	return st, stats
}

// statAttrs renders a pass's Stats as span attributes.
func statAttrs(s Stats) []obs.Attr {
	return []obs.Attr{
		obs.Int("iterations", s.Iterations),
		obs.Int64("edges_pushed", s.EdgesPushed),
		obs.Int64("improved", s.Improved),
	}
}

// Propagate drives an already-seeded frontier to fixpoint over g,
// following the Options scheduler policy. Exposed for the incremental
// paths (addition seeding, trim re-propagation).
func Propagate(g delta.Graph, st *State, seeds []graph.VertexID, opt Options) Stats {
	f := newFrontier(g.NumVertices())
	for _, v := range seeds {
		f.setSeq(v)
	}
	return propagate(g, st, f, opt)
}

func propagate(g delta.Graph, st *State, seed *frontier, opt Options) Stats {
	mode := opt.Mode
	if mode == Auto {
		if seed.count() <= opt.threshold() {
			mode = Async
		} else {
			mode = Sync
		}
	}
	if mode == Async {
		return runAsync(g, st, seed)
	}
	return runSync(g, st, seed, opt.workers())
}

// runAsync drains a FIFO worklist sequentially; an improvement is visible
// to later pops in the same pass (the paper's asynchronous mode).
func runAsync(g delta.Graph, st *State, seed *frontier) Stats {
	var stats Stats
	n := g.NumVertices()
	queued := make([]bool, n)
	queue := make([]graph.VertexID, 0, 1024)
	seed.forEachInWordRange(0, seed.words(), func(v graph.VertexID) {
		queue = append(queue, v)
		queued[v] = true
	})
	id := st.a.Identity()
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		queued[u] = false
		uval := st.Value(u)
		if uval == id {
			continue
		}
		g.OutEdges(u, func(v graph.VertexID, w graph.Weight) {
			stats.EdgesPushed++
			cand := st.a.Propagate(uval, w)
			if st.TryImprove(v, cand, u) {
				stats.Improved++
				if !queued[v] {
					queued[v] = true
					queue = append(queue, v)
				}
			}
		})
	}
	return stats
}

// runSync runs level-synchronized parallel iterations: workers shard the
// current frontier's bitset words, push along out-edges with CAS
// improvement, and mark the next frontier.
func runSync(g delta.Graph, st *State, cur *frontier, workers int) Stats {
	var stats Stats
	n := g.NumVertices()
	next := newFrontier(n)
	id := st.a.Identity()
	for !cur.empty() {
		stats.Iterations++
		var pushed, improved atomic.Int64
		shard := (cur.words() + workers - 1) / workers
		if shard == 0 {
			shard = 1
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * shard
			if lo >= cur.words() {
				break
			}
			hi := lo + shard
			if hi > cur.words() {
				hi = cur.words()
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				var p, imp int64
				cur.forEachInWordRange(lo, hi, func(u graph.VertexID) {
					uval := st.Value(u)
					if uval == id {
						return
					}
					g.OutEdges(u, func(v graph.VertexID, wt graph.Weight) {
						p++
						cand := st.a.Propagate(uval, wt)
						if st.TryImprove(v, cand, u) {
							imp++
							next.set(v)
						}
					})
				})
				pushed.Add(p)
				improved.Add(imp)
			}(lo, hi)
		}
		wg.Wait()
		stats.EdgesPushed += pushed.Load()
		stats.Improved += improved.Load()
		cur, next = next, cur
		next.clear()
	}
	return stats
}

package engine

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// Mode selects the scheduler policy of §4.3: synchronous level-barriered
// iterations for large frontiers, or an asynchronous worklist where an
// update becomes visible within the current pass, which is faster for the
// small frontiers typical of incremental batches.
type Mode int

const (
	// Auto picks Async when the seed frontier is below AsyncThreshold,
	// Sync otherwise (the paper's scheduler policy).
	Auto Mode = iota
	// Sync runs barrier-separated parallel iterations.
	Sync
	// Async runs a worklist to fixpoint with immediate visibility.
	Async
)

// Options tunes an engine run.
type Options struct {
	// Workers is the parallel width for Sync iterations; 0 means
	// GOMAXPROCS.
	Workers int
	// Mode selects the scheduler (default Auto).
	Mode Mode
	// AsyncThreshold is the seed-frontier size below which Auto chooses
	// Async; 0 means DefaultAsyncThreshold.
	AsyncThreshold int
	// AsyncWorkers bounds the parallel width of the Async worklist; 0 or
	// 1 keeps the sequential FIFO drain (lowest overhead, deterministic
	// pop order). Larger values let Auto mode's small-frontier path use
	// cores too: workers share one bounded worklist and an improvement
	// becomes visible within the pass, as in the sequential drain.
	AsyncWorkers int
	// Span, when non-nil, is the caller's trace span: each Run /
	// IncrementalAddParts emits one child span carrying its Stats. Spans
	// are per engine pass, never per vertex — the hot loop stays
	// untouched, and a nil Span costs one pointer test per pass.
	Span *obs.Span
	// Shards selects the sharded executor (internal/shard): the vertex
	// space is partitioned into contiguous degree-balanced ranges, each
	// with its own frontier, and cross-shard edges route through
	// per-shard inboxes. 0 or 1 keeps this unsharded engine — the engine
	// itself never reads the field; internal/shard's dispatchers do, and
	// fall back here when it is off or the graph has no flat CSR form.
	Shards int
	// ShardPlan optionally pins the shard cut points (len Shards+1,
	// ascending, first 0 and last NumVertices) so every pass of one
	// evaluation — and every ICG edge of a Work-Sharing schedule — reuses
	// one plan. Empty means the sharded executor cuts its own plan from
	// base-CSR degree statistics per pass. Plain data by design: the
	// field threads through core/evaluate without importing the shard
	// package.
	ShardPlan []graph.VertexID
}

// WithSpan returns a copy of the options with the trace span replaced —
// the executors stamp their current schedule-edge span onto the engine
// pass they are about to run.
func (o Options) WithSpan(s *obs.Span) Options {
	o.Span = s
	return o
}

// DefaultAsyncThreshold is the Auto-mode cutover point.
const DefaultAsyncThreshold = 2048

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) threshold() int {
	if o.AsyncThreshold > 0 {
		return o.AsyncThreshold
	}
	return DefaultAsyncThreshold
}

func (o Options) asyncWorkers() int {
	if o.AsyncWorkers > 1 {
		return o.AsyncWorkers
	}
	return 1
}

// Stats reports the work an engine pass performed.
type Stats struct {
	Iterations  int   // sync iterations (0 for async runs)
	EdgesPushed int64 // out-edges examined from active vertices
	Improved    int64 // successful value improvements
	Trimmed     int64 // vertices invalidated by deletion trimming
}

// Add accumulates another pass's stats into s.
func (s *Stats) Add(o Stats) {
	s.Iterations += o.Iterations
	s.EdgesPushed += o.EdgesPushed
	s.Improved += o.Improved
	s.Trimmed += o.Trimmed
}

func (s *Stats) add(o Stats) { s.Add(o) }

// Run evaluates the query from scratch: it allocates fresh state with only
// the source set and propagates to fixpoint over g. A from-scratch solve
// touches the whole graph regardless of its one-vertex seed, so Auto mode
// resolves to Sync (level-synchronous parallel iterations) here; pass
// Async explicitly to force the worklist.
func Run(g delta.Graph, a algo.Algorithm, src graph.VertexID, opt Options) (*State, Stats) {
	sp := opt.Span.StartChild("engine.run", obs.String("algo", a.Name()))
	st := NewState(g.NumVertices(), a, src)
	seed := newFrontier(g.NumVertices())
	seed.setSeq(src)
	if opt.Mode == Auto {
		opt.Mode = Sync
	}
	stats := propagate(g, st, seed, opt)
	sp.SetAttr(statAttrs(stats)...)
	sp.End()
	return st, stats
}

// statAttrs renders a pass's Stats as span attributes.
func statAttrs(s Stats) []obs.Attr {
	return []obs.Attr{
		obs.Int("iterations", s.Iterations),
		obs.Int64("edges_pushed", s.EdgesPushed),
		obs.Int64("improved", s.Improved),
	}
}

// Propagate drives an already-seeded frontier to fixpoint over g,
// following the Options scheduler policy. Exposed for the incremental
// paths (addition seeding, trim re-propagation). Duplicate seeds are
// deduplicated; the frontier starts in its sparse representation, so a
// small seed set never pays a bitset-scan.
func Propagate(g delta.Graph, st *State, seeds []graph.VertexID, opt Options) Stats {
	f := newFrontier(g.NumVertices())
	for _, v := range seeds {
		f.setSeq(v)
	}
	return propagate(g, st, f, opt)
}

// flatLayer is one CSR layer's backing slices, captured once per pass so
// the inner loops index the arrays directly (no closure per edge).
type flatLayer struct {
	offs []int32
	tgts []graph.VertexID
	wts  []graph.Weight
}

// flatten probes g for the fused flat-traversal contract
// (delta.FlatSource). A nil return routes the pass through the callback
// Graph interface — the path the mutable KickStarter adjacency uses.
func flatten(g delta.Graph) []flatLayer {
	fs, ok := g.(delta.FlatSource)
	if !ok {
		return nil
	}
	csrs := fs.OutCSRs()
	layers := make([]flatLayer, len(csrs))
	for i, c := range csrs {
		layers[i] = flatLayer{offs: c.Offsets(), tgts: c.Targets(), wts: c.Weights()}
	}
	return layers
}

// degree sums u's row lengths across the layers.
func degree(layers []flatLayer, u graph.VertexID) int {
	d := 0
	for i := range layers {
		offs := layers[i].offs
		d += int(offs[u+1] - offs[u])
	}
	return d
}

func propagate(g delta.Graph, st *State, seed *frontier, opt Options) Stats {
	mode := opt.Mode
	if mode == Auto {
		if seed.count() <= opt.threshold() {
			mode = Async
		} else {
			mode = Sync
		}
	}
	layers := flatten(g)
	if mode == Async {
		if w := opt.asyncWorkers(); w > 1 {
			return runAsyncParallel(g, st, seed, layers, w)
		}
		return runAsync(g, st, seed, layers)
	}
	return runSync(g, st, seed, opt.workers(), layers)
}

// Scheduling constants of the sync hot path.
const (
	// seqEdgeCutoff: an iteration examining fewer edges than this runs on
	// the calling goroutine — spawning workers costs more than the work.
	seqEdgeCutoff = 4096
	// chunkTargetPerWorker: the stealing cursor hands out roughly this
	// many chunks per worker, so a slow chunk (a hub's row) delays one
	// chunk, not a shard.
	chunkTargetPerWorker = 8
	// minChunkEdges floors the degree-aware chunk size.
	minChunkEdges = 1024
	// denseWordChunk is the stealing granularity of dense word scans.
	denseWordChunk = 128
	// DenseWordChunk exports the dense stealing granularity for the
	// sharded executor, which keeps the same per-shard switchover.
	DenseWordChunk = denseWordChunk
	// sparseVertexChunk is the stealing granularity of sparse scans when
	// no flat layers are available (no degree information).
	sparseVertexChunk = 256
)

// syncRunner holds one sync pass's reusable scratch: the next frontier,
// per-worker buffers, and the degree-prefix array of the sparse path.
// Everything is allocated once per pass and recycled across iterations.
type syncRunner struct {
	g       delta.Graph
	st      *State
	alg     algo.Algorithm
	id      algo.Value
	layers  []flatLayer
	workers int
	min     bool
	next    *frontier
	prefix  []int
	bufs    [][]graph.VertexID
}

// runSync runs level-synchronized iterations. Each iteration picks the
// frontier representation (sparse list vs dense bitset scan) and the
// execution shape (sequential below seqEdgeCutoff; otherwise degree-aware
// chunks handed to workers through an atomic work-stealing cursor).
func runSync(g delta.Graph, st *State, cur *frontier, workers int, layers []flatLayer) Stats {
	var stats Stats
	n := g.NumVertices()
	r := &syncRunner{
		g: g, st: st, alg: st.a, id: st.a.Identity(), min: st.minimize(),
		layers: layers, workers: workers, next: newFrontier(n),
	}
	for !cur.empty() {
		stats.Iterations++
		p, imp := r.iterate(cur)
		stats.EdgesPushed += p
		stats.Improved += imp
		cur, r.next = r.next, cur
		r.next.clear()
	}
	return stats
}

// iterate processes one frontier into r.next and returns (pushed,
// improved) counts.
func (r *syncRunner) iterate(cur *frontier) (int64, int64) {
	if cur.isSparse() && r.layers != nil {
		list := cur.list()
		// Degree prefix over the active list: prefix[i] is the number of
		// frontier edges before list[i]. It prices the iteration exactly
		// (sequential vs parallel) and lets chunks cut in edge space, so
		// a hub's row splits across chunks instead of serializing one.
		if cap(r.prefix) < len(list)+1 {
			r.prefix = make([]int, len(list)+1)
		}
		prefix := r.prefix[:len(list)+1]
		total := 0
		for i, u := range list {
			prefix[i] = total
			total += degree(r.layers, u)
		}
		prefix[len(list)] = total
		if r.workers == 1 || total <= seqEdgeCutoff {
			return r.sparseSeq(list)
		}
		return r.sparsePar(list, prefix, total)
	}
	if cur.isSparse() {
		// Sparse without flat layers (mutable baseline adjacency): no
		// degree information, so chunk by vertex count.
		list := cur.list()
		if r.workers == 1 || len(list) <= sparseVertexChunk {
			return r.callbackSeqList(list)
		}
		return r.callbackParList(list)
	}
	// Dense: ordered word scan.
	if r.workers == 1 || cur.words() <= 2*denseWordChunk {
		return r.denseSeq(cur)
	}
	return r.densePar(cur)
}

// sparseSeq drains a sparse flat frontier on the calling goroutine; the
// next frontier is maintained with non-atomic writes.
func (r *syncRunner) sparseSeq(list []graph.VertexID) (int64, int64) {
	var p, imp int64
	st, next, id, min := r.st, r.next, r.id, r.min
	for _, u := range list {
		uval := st.Value(u)
		if uval == id {
			continue
		}
		for li := range r.layers {
			L := &r.layers[li]
			lo, hi := L.offs[u], L.offs[u+1]
			ts := L.tgts[lo:hi]
			ws := L.wts[lo:hi]
			for i, v := range ts {
				cand := r.alg.Propagate(uval, ws[i])
				if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
					imp++
					next.setSeq(v)
				}
			}
			p += int64(len(ts))
		}
	}
	return p, imp
}

// denseSeq scans the bitset words in order on the calling goroutine.
func (r *syncRunner) denseSeq(cur *frontier) (int64, int64) {
	var p, imp int64
	st, next, id, min := r.st, r.next, r.id, r.min
	if r.layers == nil {
		cur.forEachInWordRange(0, cur.words(), func(u graph.VertexID) {
			uval := st.Value(u)
			if uval == id {
				return
			}
			r.g.OutEdges(u, func(v graph.VertexID, w graph.Weight) {
				p++
				cand := r.alg.Propagate(uval, w)
				if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
					imp++
					next.setSeq(v)
				}
			})
		})
		return p, imp
	}
	cur.forEachInWordRange(0, cur.words(), func(u graph.VertexID) {
		uval := st.Value(u)
		if uval == id {
			return
		}
		for li := range r.layers {
			L := &r.layers[li]
			lo, hi := L.offs[u], L.offs[u+1]
			ts := L.tgts[lo:hi]
			ws := L.wts[lo:hi]
			for i, v := range ts {
				cand := r.alg.Propagate(uval, ws[i])
				if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
					imp++
					next.setSeq(v)
				}
			}
			p += int64(len(ts))
		}
	})
	return p, imp
}

// buffers returns w cleared per-worker collection buffers.
func (r *syncRunner) buffers(w int) [][]graph.VertexID {
	for len(r.bufs) < w {
		r.bufs = append(r.bufs, nil)
	}
	for i := 0; i < w; i++ {
		r.bufs[i] = r.bufs[i][:0]
	}
	return r.bufs[:w]
}

// publish installs the workers' collected vertices as r.next's exact
// sparse list (or drops to dense past the size threshold).
func (r *syncRunner) publish(bufs [][]graph.VertexID) {
	collected := r.next.sparse[:0]
	for _, b := range bufs {
		collected = append(collected, b...)
	}
	r.next.adopt(collected)
}

// ChunkEdges is the degree-aware chunk size for an edge-space scan:
// roughly chunkTargetPerWorker chunks per worker, floored so tiny
// frontiers do not shatter into cache-hostile slivers. Exported for the
// sharded executor, whose cross-shard stealing hands out chunks cut with
// the same policy.
func ChunkEdges(totalEdges, workers int) int {
	if workers < 1 {
		workers = 1
	}
	sz := totalEdges / (workers * chunkTargetPerWorker)
	if sz < minChunkEdges {
		sz = minChunkEdges
	}
	return sz
}

// sparsePar processes a sparse flat frontier with degree-aware chunks in
// edge space: chunk k owns frontier-edge positions [k*sz, (k+1)*sz), and
// an atomic cursor lets idle workers steal the next chunk. A hub vertex's
// row spans several chunks, so it parallelizes instead of pinning the
// worker that drew it.
func (r *syncRunner) sparsePar(list []graph.VertexID, prefix []int, total int) (int64, int64) {
	sz := ChunkEdges(total, r.workers)
	chunks := (total + sz - 1) / sz
	workers := r.workers
	if workers > chunks {
		workers = chunks
	}
	bufs := r.buffers(workers)
	var cursor atomic.Int64
	var pushed, improved atomic.Int64
	var wg sync.WaitGroup
	var box panicBox
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer box.capture()
			var p, imp int64
			buf := bufs[w]
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					break
				}
				lo := c * sz
				hi := lo + sz
				if hi > total {
					hi = total
				}
				// First vertex whose edge range reaches past lo.
				i := sort.Search(len(list), func(i int) bool { return prefix[i+1] > lo })
				for ; i < len(list) && prefix[i] < hi; i++ {
					a, b := lo-prefix[i], hi-prefix[i]
					if a < 0 {
						a = 0
					}
					if d := prefix[i+1] - prefix[i]; b > d {
						b = d
					}
					p2, i2 := r.pushRange(list[i], a, b, &buf)
					p += p2
					imp += i2
				}
			}
			bufs[w] = buf //cgvet:ignore lockdiscipline -- index-disjoint, one w per goroutine
			pushed.Add(p)
			improved.Add(imp)
		}(w)
	}
	wg.Wait()
	box.rethrow()
	r.publish(bufs)
	return pushed.Load(), improved.Load()
}

// pushRange pushes u's frontier-edge positions [a, b) — a sub-range of
// its concatenated layer rows — collecting newly activated vertices.
func (r *syncRunner) pushRange(u graph.VertexID, a, b int, buf *[]graph.VertexID) (int64, int64) {
	uval := r.st.Value(u)
	if uval == r.id {
		return 0, 0
	}
	var p, imp int64
	st, next, min := r.st, r.next, r.min
	off := 0
	for li := range r.layers {
		L := &r.layers[li]
		lo, hi := L.offs[u], L.offs[u+1]
		d := int(hi - lo)
		if off+d <= a {
			off += d
			continue
		}
		if off >= b {
			break
		}
		s, e := 0, d
		if a > off {
			s = a - off
		}
		if b-off < d {
			e = b - off
		}
		ts := L.tgts[lo+int32(s) : lo+int32(e)]
		ws := L.wts[lo+int32(s) : lo+int32(e)]
		for i, v := range ts {
			cand := r.alg.Propagate(uval, ws[i])
			if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
				imp++
				if next.trySet(v) {
					*buf = append(*buf, v)
				}
			}
		}
		p += int64(len(ts))
		off += d
	}
	return p, imp
}

// pushFull pushes u's whole row (all layers), collecting newly activated
// vertices — the dense-scan worker body.
func (r *syncRunner) pushFull(u graph.VertexID, buf *[]graph.VertexID) (int64, int64) {
	uval := r.st.Value(u)
	if uval == r.id {
		return 0, 0
	}
	var p, imp int64
	st, next, min := r.st, r.next, r.min
	if r.layers == nil {
		r.g.OutEdges(u, func(v graph.VertexID, w graph.Weight) {
			p++
			cand := r.alg.Propagate(uval, w)
			if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
				imp++
				if next.trySet(v) {
					*buf = append(*buf, v)
				}
			}
		})
		return p, imp
	}
	for li := range r.layers {
		L := &r.layers[li]
		lo, hi := L.offs[u], L.offs[u+1]
		ts := L.tgts[lo:hi]
		ws := L.wts[lo:hi]
		for i, v := range ts {
			cand := r.alg.Propagate(uval, ws[i])
			if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
				imp++
				if next.trySet(v) {
					*buf = append(*buf, v)
				}
			}
		}
		p += int64(len(ts))
	}
	return p, imp
}

// densePar scans the bitset in word chunks behind a stealing cursor.
func (r *syncRunner) densePar(cur *frontier) (int64, int64) {
	words := cur.words()
	chunks := (words + denseWordChunk - 1) / denseWordChunk
	workers := r.workers
	if workers > chunks {
		workers = chunks
	}
	bufs := r.buffers(workers)
	var cursor atomic.Int64
	var pushed, improved atomic.Int64
	var wg sync.WaitGroup
	var box panicBox
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer box.capture()
			var p, imp int64
			buf := bufs[w]
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					break
				}
				lo := c * denseWordChunk
				hi := lo + denseWordChunk
				if hi > words {
					hi = words
				}
				cur.forEachInWordRange(lo, hi, func(u graph.VertexID) {
					p2, i2 := r.pushFull(u, &buf)
					p += p2
					imp += i2
				})
			}
			bufs[w] = buf //cgvet:ignore lockdiscipline -- index-disjoint, one w per goroutine
			pushed.Add(p)
			improved.Add(imp)
		}(w)
	}
	wg.Wait()
	box.rethrow()
	r.publish(bufs)
	return pushed.Load(), improved.Load()
}

// callbackSeqList drains a sparse frontier through the callback interface
// on the calling goroutine (no flat layers: the mutable baseline).
func (r *syncRunner) callbackSeqList(list []graph.VertexID) (int64, int64) {
	var p, imp int64
	st, next, id, min := r.st, r.next, r.id, r.min
	for _, u := range list {
		uval := st.Value(u)
		if uval == id {
			continue
		}
		r.g.OutEdges(u, func(v graph.VertexID, w graph.Weight) {
			p++
			cand := r.alg.Propagate(uval, w)
			if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
				imp++
				next.setSeq(v)
			}
		})
	}
	return p, imp
}

// callbackParList chunks a sparse frontier by vertex count (no degree
// information without layers) behind the stealing cursor.
func (r *syncRunner) callbackParList(list []graph.VertexID) (int64, int64) {
	chunks := (len(list) + sparseVertexChunk - 1) / sparseVertexChunk
	workers := r.workers
	if workers > chunks {
		workers = chunks
	}
	bufs := r.buffers(workers)
	var cursor atomic.Int64
	var pushed, improved atomic.Int64
	var wg sync.WaitGroup
	var box panicBox
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer box.capture()
			var p, imp int64
			buf := bufs[w]
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					break
				}
				lo := c * sparseVertexChunk
				hi := lo + sparseVertexChunk
				if hi > len(list) {
					hi = len(list)
				}
				for _, u := range list[lo:hi] {
					p2, i2 := r.pushFull(u, &buf)
					p += p2
					imp += i2
				}
			}
			bufs[w] = buf //cgvet:ignore lockdiscipline -- index-disjoint, one w per goroutine
			pushed.Add(p)
			improved.Add(imp)
		}(w)
	}
	wg.Wait()
	box.rethrow()
	r.publish(bufs)
	return pushed.Load(), improved.Load()
}

// Package engine is the push-based iterative execution engine shared by
// the KickStarter baseline and the CommonGraph system. It evaluates a
// monotonic vertex program (internal/algo) over any adjacency view
// (internal/delta.Graph) from scratch or incrementally, sequentially or in
// parallel, and maintains the dependence tree (each vertex's parent — the
// in-neighbour that justified its value) that KickStarter-style trimming
// requires.
package engine

import (
	"sync/atomic"

	"commongraph/internal/algo"
	"commongraph/internal/graph"
)

// State is the query state for one graph version: per-vertex (value,
// parent) pairs packed into single 64-bit words so parallel updates keep
// value and dependence parent consistent, plus the query's source.
type State struct {
	a   algo.Algorithm
	src graph.VertexID
	// min caches a.Direction() == Minimize so the per-edge improvement
	// test is a plain comparison, not an interface call.
	min bool
	//cgvet:ignore atomicguard -- phase contract: Load/TryImprove/Improves CAS words while workers run; Clone/Equal/Reached and construction touch them plainly only at quiescent points (no pass in flight)
	words []uint64 // hi 32 bits: value (int32 bit pattern); lo 32: parent
}

func pack(v algo.Value, parent graph.VertexID) uint64 {
	return uint64(uint32(v))<<32 | uint64(uint32(parent))
}

func unpack(w uint64) (algo.Value, graph.VertexID) {
	return algo.Value(int32(uint32(w >> 32))), graph.VertexID(uint32(w))
}

// NewState allocates state for n vertices: every vertex holds the
// algorithm's identity except the source, which holds its source value.
func NewState(n int, a algo.Algorithm, src graph.VertexID) *State {
	s := &State{a: a, src: src, min: a.Direction() == algo.Minimize, words: make([]uint64, n)}
	id := pack(a.Identity(), graph.NoVertex)
	for i := range s.words {
		s.words[i] = id
	}
	s.words[src] = pack(a.SourceValue(), graph.NoVertex)
	return s
}

// NumVertices returns the number of vertices covered.
func (s *State) NumVertices() int { return len(s.words) }

// Algorithm returns the vertex program this state belongs to.
func (s *State) Algorithm() algo.Algorithm { return s.a }

// Source returns the query source vertex.
func (s *State) Source() graph.VertexID { return s.src }

// Value returns v's current value.
func (s *State) Value(v graph.VertexID) algo.Value {
	val, _ := unpack(atomic.LoadUint64(&s.words[v]))
	return val
}

// Parent returns the in-neighbour that justified v's current value, or
// NoVertex for the source and unreached vertices.
func (s *State) Parent(v graph.VertexID) graph.VertexID {
	_, p := unpack(atomic.LoadUint64(&s.words[v]))
	return p
}

// Load returns v's (value, parent) pair atomically.
func (s *State) Load(v graph.VertexID) (algo.Value, graph.VertexID) {
	return unpack(atomic.LoadUint64(&s.words[v]))
}

// TryImprove installs (cand, parent) at v if cand improves on v's current
// value, retrying on contention. It reports whether the value changed.
// This is the CASMIN/CASMAX of Table 3.
func (s *State) TryImprove(v graph.VertexID, cand algo.Value, parent graph.VertexID) bool {
	for {
		old := atomic.LoadUint64(&s.words[v])
		cur, _ := unpack(old)
		if s.min {
			if cand >= cur {
				return false
			}
		} else if cand <= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(&s.words[v], old, pack(cand, parent)) {
			return true
		}
	}
}

// Improves reports whether cand would improve v's value right now, given
// the cached improvement direction (pass State.minimize). It is an
// inlinable racy pre-filter for the hot loops: a true answer may go stale
// before the CAS, so callers must still go through TryImprove — but the
// common non-improving edge skips the function call entirely.
func (s *State) Improves(v graph.VertexID, cand algo.Value, minimize bool) bool {
	cur, _ := unpack(atomic.LoadUint64(&s.words[v]))
	if minimize {
		return cand < cur
	}
	return cand > cur
}

// minimize exposes the cached direction for hot-loop hoisting.
func (s *State) minimize() bool { return s.min }

// Reset forces v to (value, parent) unconditionally. Used by trimming to
// invalidate vertices; not safe concurrently with TryImprove on v.
func (s *State) Reset(v graph.VertexID, val algo.Value, parent graph.VertexID) {
	atomic.StoreUint64(&s.words[v], pack(val, parent))
}

// Clone returns an independent copy of the state. The receiver must be
// quiescent (no concurrent writers).
func (s *State) Clone() *State {
	c := &State{a: s.a, src: s.src, min: s.min, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Values copies the value array out (for result reporting).
func (s *State) Values() []algo.Value {
	out := make([]algo.Value, len(s.words))
	for i := range s.words {
		out[i], _ = unpack(s.words[i])
	}
	return out
}

// Reached counts vertices whose value is not the identity.
func (s *State) Reached() int {
	id := s.a.Identity()
	n := 0
	for i := range s.words {
		if v, _ := unpack(s.words[i]); v != id {
			n++
		}
	}
	return n
}

// Equal reports whether two states agree on every vertex value (parents
// may differ: shortest-path trees are not unique).
func (s *State) Equal(o *State) bool {
	if len(s.words) != len(o.words) {
		return false
	}
	for i := range s.words {
		v1, _ := unpack(s.words[i])
		v2, _ := unpack(o.words[i])
		if v1 != v2 {
			return false
		}
	}
	return true
}

package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
)

// engineVariants is the scheduler/parallelism matrix every differential
// check runs against: sequential and parallel sync (hybrid frontier +
// work stealing), sequential and bounded-parallel async worklist, and the
// Auto policy. Small graphs exercise the sequential fast paths; the large
// trials push iterations over the parallel cutoffs.
func engineVariants() []Options {
	return []Options{
		{Mode: Sync, Workers: 1},
		{Mode: Sync, Workers: 4},
		{Mode: Async},
		{Mode: Async, AsyncWorkers: 4},
		{Mode: Auto, Workers: 4, AsyncWorkers: 2},
	}
}

// randomGraphAndBatch builds a random base graph and a random addition
// batch over the same vertex set.
func randomGraphAndBatch(rng *rand.Rand, n, m, batch int) (*graph.Pair, graph.EdgeList) {
	edges := make(graph.EdgeList, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			Src: graph.VertexID(rng.Intn(n)),
			Dst: graph.VertexID(rng.Intn(n)),
			W:   graph.Weight(1 + rng.Intn(8)),
		})
	}
	edges = edges.Canonicalize()
	add := make(graph.EdgeList, 0, batch)
	for i := 0; i < batch; i++ {
		add = append(add, graph.Edge{
			Src: graph.VertexID(rng.Intn(n)),
			Dst: graph.VertexID(rng.Intn(n)),
			W:   graph.Weight(1 + rng.Intn(8)),
		})
	}
	// Duplicates between add and base become parallel edges in the overlay
	// view; the oracle traverses the same view, so they are harmless.
	add = add.Canonicalize()
	return graph.NewPair(n, edges), add
}

// checkAllVariants verifies every engine variant reproduces the oracle
// from scratch, incrementally (sparse seeds), and from a dense full
// reseed over the overlay view.
func checkAllVariants(t *testing.T, g *graph.Pair, add graph.EdgeList, a algo.Algorithm, src graph.VertexID) {
	t.Helper()
	n := g.NumVertices()
	refBase := Reference(g, a, src)
	og := delta.NewOverlayGraph(g, delta.NewOverlay(n, delta.MustFromCanonical(add)))
	refInc := Reference(og, a, src)
	base, _ := Run(g, a, src, Options{Mode: Sync, Workers: 1})
	if !ValuesEqual(base, refBase) {
		t.Fatalf("%s: baseline sync run diverges from oracle", a.Name())
	}
	allSeeds := make([]graph.VertexID, n)
	for i := range allSeeds {
		allSeeds[i] = graph.VertexID(i)
	}
	for vi, opt := range engineVariants() {
		// From scratch (sparse single-vertex seed growing to dense).
		st, _ := Run(g, a, src, opt)
		if !ValuesEqual(st, refBase) {
			t.Fatalf("%s variant %d: from-scratch values diverge", a.Name(), vi)
		}
		// Incremental addition (sparse seeds = batch endpoints).
		st = base.Clone()
		IncrementalAdd(og, st, add, opt)
		if !ValuesEqual(st, refInc) {
			t.Fatalf("%s variant %d: incremental-add values diverge", a.Name(), vi)
		}
		// Dense reseed: every vertex seeded at once over the overlay view
		// (the shape of a trim re-propagation that invalidated widely).
		st = base.Clone()
		Propagate(og, st, allSeeds, opt)
		if !ValuesEqual(st, refInc) {
			t.Fatalf("%s variant %d: dense-reseed values diverge", a.Name(), vi)
		}
	}
}

// TestDifferentialRandom cross-checks the hybrid engine against the
// Reference oracle on random graphs and batches, every algorithm times
// the full scheduler matrix. Runs under -race in CI (make race), which is
// what pins the parallel sync chunking and the shared async worklist.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0))
	for trial := 0; trial < 5; trial++ {
		n := 48 + rng.Intn(200)
		m := n * (2 + rng.Intn(4))
		g, add := randomGraphAndBatch(rng, n, m, 1+rng.Intn(n))
		src := graph.VertexID(rng.Intn(n))
		for _, a := range algo.All() {
			checkAllVariants(t, g, add, a, src)
		}
	}
}

// TestDifferentialLarge runs the same cross-check on one power-law graph
// big enough that sync iterations cross the parallel work-stealing
// cutoffs (edge-space chunking, dense word chunking) rather than taking
// the sequential fast path.
func TestDifferentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential skipped in -short")
	}
	n, edges := gen.RMAT(gen.DefaultRMAT(13, 120_000, 11))
	g := graph.NewPair(n, edges)
	trs, err := gen.Stream(n, edges, gen.StreamConfig{Transitions: 1, Additions: 3000, Deletions: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	add := trs[0].Additions
	for _, a := range []algo.Algorithm{algo.BFS{}, algo.SSSP{}, algo.SSWP{}} {
		checkAllVariants(t, g, add, a, 0)
	}
}

// FuzzEngineDifferential is the native fuzz entry: the fuzzer picks the
// shape bytes, the test derives a deterministic graph + batch from them
// and requires every engine variant to match the oracle.
func FuzzEngineDifferential(f *testing.F) {
	f.Add(int64(1), uint8(64), uint8(3), uint8(10))
	f.Add(int64(77), uint8(200), uint8(5), uint8(100))
	f.Add(int64(0xBEEF), uint8(16), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nByte, degByte, batchByte uint8) {
		n := 8 + int(nByte)
		deg := 1 + int(degByte%6)
		batch := 1 + int(batchByte)
		rng := rand.New(rand.NewSource(seed))
		g, add := randomGraphAndBatch(rng, n, n*deg, batch)
		src := graph.VertexID(rng.Intn(n))
		// One cheap and one weighted algorithm keep the fuzz iteration
		// fast; the full five run in TestDifferentialRandom.
		for _, a := range []algo.Algorithm{algo.BFS{}, algo.SSSP{}} {
			checkAllVariants(t, g, add, a, src)
		}
	})
}

// TestParallelMatchesSequentialStats sanity-checks that the parallel
// variants do the same logical work: EdgesPushed of a deterministic sync
// pass is schedule-independent (each iteration pushes exactly the
// frontier's out-edges).
func TestParallelMatchesSequentialStats(t *testing.T) {
	n, edges := gen.RMAT(gen.DefaultRMAT(12, 60_000, 9))
	g := graph.NewPair(n, edges)
	_, seq := Run(g, algo.BFS{}, 0, Options{Mode: Sync, Workers: 1})
	_, par := Run(g, algo.BFS{}, 0, Options{Mode: Sync, Workers: 4})
	if seq.Iterations != par.Iterations {
		t.Fatalf("iterations differ: seq %d par %d", seq.Iterations, par.Iterations)
	}
	if seq.EdgesPushed == 0 {
		t.Fatal("no edges pushed")
	}
}

// TestChecksumEqualAcrossVariants pins determinism of final values (and
// hence checksums) across the scheduler matrix on a skewed graph.
func TestChecksumEqualAcrossVariants(t *testing.T) {
	n, edges := gen.RMAT(gen.DefaultRMAT(12, 60_000, 4))
	g := graph.NewPair(n, edges)
	for _, a := range algo.All() {
		var want string
		for vi, opt := range engineVariants() {
			st, _ := Run(g, a, 0, opt)
			sum := fmt.Sprintf("%v", st.Values()[:64])
			if vi == 0 {
				want = sum
			} else if sum != want {
				t.Fatalf("%s variant %d: values differ from variant 0", a.Name(), vi)
			}
		}
	}
}

package engine

import (
	"sync"
	"sync/atomic"

	"commongraph/internal/delta"
	"commongraph/internal/graph"
)

// atomicBitset is the membership filter of the async worklist: a bit per
// vertex, set when the vertex is enqueued and cleared just before its
// value is read, so an improvement landing mid-processing re-enqueues the
// vertex. All operations are CAS-based (the go directive predates
// atomic.AndUint64).
type atomicBitset []uint64

func newAtomicBitset(n int) atomicBitset {
	return make(atomicBitset, (n+63)/64)
}

// trySet sets v's bit, reporting whether it was newly set.
func (b atomicBitset) trySet(v graph.VertexID) bool {
	w := &b[v>>6]
	mask := uint64(1) << (v & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// clear clears v's bit.
func (b atomicBitset) clear(v graph.VertexID) {
	w := &b[v>>6]
	mask := uint64(1) << (v & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old&^mask) {
			return
		}
	}
}

// seedQueue drains the seed frontier into an initial worklist, marking
// membership bits. The frontier is already duplicate-free, so this is a
// straight copy for sparse seeds.
func seedQueue(seed *frontier, inQ atomicBitset) []graph.VertexID {
	queue := make([]graph.VertexID, 0, seed.count())
	collect := func(v graph.VertexID) {
		if inQ.trySet(v) {
			queue = append(queue, v)
		}
	}
	if seed.isSparse() {
		for _, v := range seed.list() {
			collect(v)
		}
	} else {
		seed.forEachInWordRange(0, seed.words(), collect)
	}
	return queue
}

// runAsync drains a FIFO worklist to fixpoint on the calling goroutine —
// the asynchronous mode of §4.3, where an update is visible within the
// pass. Membership is a bitset (not a []bool) and seeds come from the
// frontier's sparse list, so a small incremental batch pays O(|batch|)
// setup beyond the n/8-byte filter, not an O(V) scan.
func runAsync(g delta.Graph, st *State, seed *frontier, layers []flatLayer) Stats {
	var stats Stats
	alg := st.a
	id := alg.Identity()
	min := st.minimize()
	inQ := newAtomicBitset(g.NumVertices())
	queue := seedQueue(seed, inQ)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		inQ.clear(u)
		uval := st.Value(u)
		if uval == id {
			continue
		}
		if layers == nil {
			g.OutEdges(u, func(v graph.VertexID, w graph.Weight) {
				stats.EdgesPushed++
				cand := alg.Propagate(uval, w)
				if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
					stats.Improved++
					if inQ.trySet(v) {
						queue = append(queue, v)
					}
				}
			})
			continue
		}
		for li := range layers {
			L := &layers[li]
			lo, hi := L.offs[u], L.offs[u+1]
			ts := L.tgts[lo:hi]
			ws := L.wts[lo:hi]
			for i, v := range ts {
				cand := alg.Propagate(uval, ws[i])
				if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
					stats.Improved++
					if inQ.trySet(v) {
						queue = append(queue, v)
					}
				}
			}
			stats.EdgesPushed += int64(len(ts))
		}
	}
	return stats
}

// asyncGrab is how many vertices a parallel async worker pops per queue
// visit — large enough to amortize the lock, small enough to keep work
// spread when the list is short.
const asyncGrab = 64

// runAsyncParallel drains one shared worklist with a bounded pool of
// workers (Options.AsyncWorkers). Workers pop batches under a mutex,
// process them against the shared atomic state (improvements are visible
// within the pass, exactly like the sequential drain), and push newly
// activated vertices back. The membership bit of a vertex is cleared
// before its value is read, so a concurrent improvement re-enqueues it —
// no update is lost. Termination: the queue is empty and no worker holds
// a batch. Monotonic fixpoint values are unique, so results match the
// sequential drain regardless of interleaving; only Stats counters vary.
func runAsyncParallel(g delta.Graph, st *State, seed *frontier, layers []flatLayer, workers int) Stats {
	alg := st.a
	id := alg.Identity()
	min := st.minimize()
	inQ := newAtomicBitset(g.NumVertices())
	queue := seedQueue(seed, inQ)
	var (
		mu     sync.Mutex
		cond   = sync.NewCond(&mu)
		active int
	)
	var pushed, improved atomic.Int64
	var wg sync.WaitGroup
	var box panicBox
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic between active++ and active-- would leave the pool's
			// termination condition unreachable: sibling workers sleep in
			// cond.Wait forever and wg.Wait never returns. The deferred
			// recovery releases the slot and wakes everyone before handing
			// the panic to the coordinator via the box.
			holding := false
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				box.store(r)
				mu.Lock()
				if holding {
					active--
				}
				cond.Broadcast()
				mu.Unlock()
			}()
			var p, imp int64
			local := make([]graph.VertexID, 0, asyncGrab)
			out := make([]graph.VertexID, 0, 4*asyncGrab)
			for {
				mu.Lock()
				for len(queue) == 0 && active > 0 {
					cond.Wait() //cgvet:ignore goleak -- woken by the Broadcast every worker issues when it finishes a batch or exits; the last active worker always broadcasts, so no waiter sleeps past termination
				}
				if len(queue) == 0 {
					// No work and no producer left: the pass is done.
					mu.Unlock()
					cond.Broadcast()
					break
				}
				grab := asyncGrab
				if grab > len(queue) {
					grab = len(queue)
				}
				local = append(local[:0], queue[len(queue)-grab:]...)
				queue = queue[:len(queue)-grab]
				active++
				holding = true
				mu.Unlock()

				out = out[:0]
				for _, u := range local {
					inQ.clear(u)
					uval := st.Value(u)
					if uval == id {
						continue
					}
					if layers == nil {
						g.OutEdges(u, func(v graph.VertexID, w graph.Weight) {
							p++
							cand := alg.Propagate(uval, w)
							if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
								imp++
								if inQ.trySet(v) {
									out = append(out, v)
								}
							}
						})
						continue
					}
					for li := range layers {
						L := &layers[li]
						lo, hi := L.offs[u], L.offs[u+1]
						ts := L.tgts[lo:hi]
						ws := L.wts[lo:hi]
						for i, v := range ts {
							cand := alg.Propagate(uval, ws[i])
							if st.Improves(v, cand, min) && st.TryImprove(v, cand, u) {
								imp++
								if inQ.trySet(v) {
									out = append(out, v)
								}
							}
						}
						p += int64(len(ts))
					}
				}

				mu.Lock()
				active--
				holding = false
				if len(out) > 0 {
					queue = append(queue, out...)
					cond.Broadcast()
				} else if len(queue) == 0 && active == 0 {
					cond.Broadcast()
				}
				mu.Unlock()
			}
			pushed.Add(p)
			improved.Add(imp)
		}()
	}
	wg.Wait()
	box.rethrow()
	return Stats{EdgesPushed: pushed.Load(), Improved: improved.Load()}
}

package engine

import (
	"math/bits"
	"sync/atomic"

	"commongraph/internal/graph"
)

// frontier is the hybrid active-vertex set of the §4.3 scheduler: an
// atomic bitset (the dense representation, always authoritative for
// membership) plus, when the set is small, an exact sparse vertex list.
// Small frontiers — the common case for incremental batches and the first
// and last levels of a from-scratch solve — are iterated and cleared in
// O(|F|) through the list instead of O(V/64) full-bitset scans.
//
// Concurrency contract: trySet is the only operation safe to call from
// concurrent workers, and it maintains only the bitset. The engine
// collects the newly set vertices in per-worker buffers and, at the
// iteration barrier, publishes them with adopt (list retained) or drop
// (list abandoned, set is dense). Every other method is single-writer and
// assumes the list/bitset invariant holds.
type frontier struct {
	//cgvet:ignore atomicguard -- phase contract (documented above): trySet CASes bits during the concurrent relax phase; every plain access runs single-writer between iteration barriers
	bits []uint64
	n    int
	// sparse is the exact active list (no duplicates, unspecified order)
	// while !dense; it is meaningless when dense is set.
	sparse []graph.VertexID
	dense  bool
}

func newFrontier(n int) *frontier {
	return &frontier{bits: make([]uint64, (n+63)/64), n: n}
}

// sparseKeepDenom bounds the kept list: past n/sparseKeepDenom active
// vertices the list is dropped and iteration reverts to the ordered word
// scan, whose sequential access pattern wins on large frontiers.
const sparseKeepDenom = 16

// trySet marks v active (atomic; safe from concurrent workers) and
// reports whether the bit was newly set — exactly one caller wins, so
// per-worker buffers collect each vertex once. The sparse list is NOT
// maintained; the caller must adopt or drop at the barrier.
func (f *frontier) trySet(v graph.VertexID) bool {
	w := &f.bits[v>>6]
	mask := uint64(1) << (v & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// setSeq marks v active without atomics (single-writer phases: seeding,
// sequential iterations) and keeps the sparse list exact.
func (f *frontier) setSeq(v graph.VertexID) {
	w := &f.bits[v>>6]
	mask := uint64(1) << (v & 63)
	if *w&mask != 0 {
		return
	}
	*w |= mask
	if !f.dense {
		f.sparse = append(f.sparse, v)
		if len(f.sparse)*sparseKeepDenom > f.n {
			f.drop()
		}
	}
}

// adopt publishes list as the exact active set after a concurrent phase
// whose trySet calls already populated the bitset. The frontier takes
// ownership of list's backing array. Oversized lists degrade to dense.
func (f *frontier) adopt(list []graph.VertexID) {
	if len(list)*sparseKeepDenom > f.n {
		f.drop()
		return
	}
	f.sparse = list
	f.dense = false
}

// drop abandons the sparse list; the set lives only in the bitset.
func (f *frontier) drop() {
	f.sparse = f.sparse[:0]
	f.dense = true
}

// isSparse reports whether the exact active list is available.
func (f *frontier) isSparse() bool { return !f.dense }

// list returns the exact active list (only valid while isSparse).
func (f *frontier) list() []graph.VertexID { return f.sparse }

// has reports whether v is active.
func (f *frontier) has(v graph.VertexID) bool {
	return f.bits[v>>6]&(uint64(1)<<(v&63)) != 0
}

// clear empties the frontier, retaining capacity. A sparse frontier
// clears only the words its vertices occupy — O(|F|), not O(V/64).
func (f *frontier) clear() {
	if !f.dense && len(f.sparse) < len(f.bits) {
		for _, v := range f.sparse {
			f.bits[v>>6] = 0
		}
	} else {
		for i := range f.bits {
			f.bits[i] = 0
		}
	}
	f.sparse = f.sparse[:0]
	f.dense = false
}

// count returns the number of active vertices.
func (f *frontier) count() int {
	if !f.dense {
		return len(f.sparse)
	}
	c := 0
	for _, w := range f.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// empty reports whether no vertex is active.
func (f *frontier) empty() bool {
	if !f.dense {
		return len(f.sparse) == 0
	}
	for _, w := range f.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEachInWordRange calls fn for every active vertex whose bitset word
// index lies in [lo, hi), in ascending order. Dense-scan iteration.
func (f *frontier) forEachInWordRange(lo, hi int, fn func(v graph.VertexID)) {
	for wi := lo; wi < hi; wi++ {
		w := f.bits[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			v := graph.VertexID(wi*64 + b)
			if int(v) < f.n {
				fn(v)
			}
			w &= w - 1
		}
	}
}

// words returns the number of bitset words (the dense-scan extent).
func (f *frontier) words() int { return len(f.bits) }

package engine

import (
	"math/bits"
	"sync/atomic"

	"commongraph/internal/graph"
)

// frontier is an atomic bitset of active vertices.
type frontier struct {
	bits []uint64
	n    int
}

func newFrontier(n int) *frontier {
	return &frontier{bits: make([]uint64, (n+63)/64), n: n}
}

// set marks v active (atomic; safe from concurrent workers).
func (f *frontier) set(v graph.VertexID) {
	w := &f.bits[v>>6]
	mask := uint64(1) << (v & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// setSeq marks v active without atomics (single-writer phases).
func (f *frontier) setSeq(v graph.VertexID) {
	f.bits[v>>6] |= uint64(1) << (v & 63)
}

// has reports whether v is active.
func (f *frontier) has(v graph.VertexID) bool {
	return f.bits[v>>6]&(uint64(1)<<(v&63)) != 0
}

// clear empties the frontier, retaining capacity.
func (f *frontier) clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
}

// count returns the number of active vertices.
func (f *frontier) count() int {
	c := 0
	for _, w := range f.bits {
		c += bits.OnesCount64(w)
	}
	return c
}

// empty reports whether no vertex is active.
func (f *frontier) empty() bool {
	for _, w := range f.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEachInWordRange calls fn for every active vertex whose bitset word
// index lies in [lo, hi). Used to shard frontier scans across workers.
func (f *frontier) forEachInWordRange(lo, hi int, fn func(v graph.VertexID)) {
	for wi := lo; wi < hi; wi++ {
		w := f.bits[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			v := graph.VertexID(wi*64 + b)
			if int(v) < f.n {
				fn(v)
			}
			w &= w - 1
		}
	}
}

// words returns the number of bitset words (the shardable extent).
func (f *frontier) words() int { return len(f.bits) }

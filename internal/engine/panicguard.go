package engine

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// panicBox carries the first panic raised on a worker goroutine back to
// the coordinating goroutine. A panic unwinding a bare worker kills the
// whole process before wg.Wait returns — bypassing the executor layer's
// recoverToError containment (DESIGN.md "Failure semantics") — so every
// pool worker defers capture, and the coordinator calls rethrow after
// the pool drains. The re-raised panic then unwinds the pass on the
// coordinating goroutine, where internal/core's deferred recovery turns
// it into a *core.PanicError instead of a crash.
type panicBox struct {
	mu  sync.Mutex
	val any
}

// workerPanic is the value rethrow re-raises: the worker's panic value
// plus the worker goroutine's stack, which would otherwise be lost when
// the panic crosses goroutines.
type workerPanic struct {
	val   any
	stack []byte
}

func (p workerPanic) String() string {
	return fmt.Sprintf("engine worker panic: %v\nworker stack:\n%s", p.val, p.stack)
}

// store records r (with the current stack) if it is the box's first
// panic; later panics from sibling workers are dropped — one is enough
// to fail the pass. Must be called during the worker's unwinding (from a
// deferred function) so the stack still shows the panic site.
func (b *panicBox) store(r any) {
	wp := workerPanic{val: r, stack: debug.Stack()}
	b.mu.Lock()
	if b.val == nil {
		b.val = wp
	}
	b.mu.Unlock()
}

// capture is deferred in each worker (before wg.Done, so it runs first
// during unwinding) and absorbs a panic into the box.
func (b *panicBox) capture() {
	if r := recover(); r != nil {
		b.store(r)
	}
}

// rethrow re-raises the captured panic, if any, on the caller.
func (b *panicBox) rethrow() {
	b.mu.Lock()
	r := b.val
	b.mu.Unlock()
	if r != nil {
		panic(r)
	}
}

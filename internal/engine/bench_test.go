package engine

import (
	"fmt"
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
)

func benchSetup(b *testing.B) (*graph.Pair, int) {
	b.Helper()
	n, edges := gen.RMAT(gen.DefaultRMAT(15, 400_000, 3))
	return graph.NewPair(n, edges), n
}

// BenchmarkFromScratch measures the initial full evaluation per algorithm
// (the cost both KickStarter and CommonGraph pay once per query).
func BenchmarkFromScratch(b *testing.B) {
	g, _ := benchSetup(b)
	for _, a := range algo.All() {
		a := a
		b.Run(a.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(g, a, 0, Options{})
			}
		})
	}
}

// BenchmarkFromScratchModes contrasts the scheduler policies on a full
// evaluation.
func BenchmarkFromScratchModes(b *testing.B) {
	g, _ := benchSetup(b)
	for _, m := range []struct {
		name string
		mode Mode
	}{{"Sync", Sync}, {"Async", Async}} {
		m := m
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(g, algo.BFS{}, 0, Options{Mode: m.mode})
			}
		})
	}
}

// BenchmarkIncrementalAdd measures addition batches of growing size —
// the core primitive of the CommonGraph strategies.
func BenchmarkIncrementalAdd(b *testing.B) {
	g, n := benchSetup(b)
	for _, size := range []int{1000, 4000, 16000} {
		size := size
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			trs, err := gen.Stream(n, g.Out.Edges(), gen.StreamConfig{Transitions: 1, Additions: size, Deletions: 0, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			add := trs[0].Additions
			ov := delta.NewOverlay(n, delta.MustFromCanonical(add))
			og := delta.NewOverlayGraph(g, ov)
			base, _ := Run(g, algo.SSSP{}, 0, Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := base.Clone()
				b.StartTimer()
				IncrementalAdd(og, st, add, Options{})
			}
		})
	}
}

// BenchmarkStateClone measures the branch-point cost of Work-Sharing.
func BenchmarkStateClone(b *testing.B) {
	g, _ := benchSetup(b)
	st, _ := Run(g, algo.BFS{}, 0, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Clone()
	}
}

package engine

import (
	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/graph"
)

// Reference computes the query fixpoint by repeated whole-graph sweeps
// (Bellman–Ford style). It is deliberately simple and is the oracle that
// tests compare every other evaluation path against. O(V·E) worst case —
// test-sized graphs only.
func Reference(g delta.Graph, a algo.Algorithm, src graph.VertexID) []algo.Value {
	n := g.NumVertices()
	vals := make([]algo.Value, n)
	for i := range vals {
		vals[i] = a.Identity()
	}
	vals[src] = a.SourceValue()
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			uval := vals[u]
			if uval == a.Identity() {
				continue
			}
			g.OutEdges(graph.VertexID(u), func(v graph.VertexID, w graph.Weight) {
				cand := a.Propagate(uval, w)
				if algo.Better(a, cand, vals[v]) {
					vals[v] = cand
					changed = true
				}
			})
		}
	}
	return vals
}

// ValuesEqual compares a state's values against a reference value slice.
func ValuesEqual(st *State, ref []algo.Value) bool {
	if st.NumVertices() != len(ref) {
		return false
	}
	for i, want := range ref {
		if st.Value(graph.VertexID(i)) != want {
			return false
		}
	}
	return true
}

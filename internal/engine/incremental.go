package engine

import (
	"commongraph/internal/delta"
	"commongraph/internal/graph"
	"commongraph/internal/obs"
)

// IncrementalAdd updates st for a batch of edge additions (Algorithm 2 of
// the paper). g must already present the batch (for the CommonGraph system
// that means the overlay has been pushed; for KickStarter the adjacency
// has been mutated). Each added edge is applied once to seed destinations,
// then the scheduler propagates to fixpoint.
//
// For monotonic algorithms additions can only improve values, so no
// invalidation is needed — this is the cheap path the paper contrasts with
// deletion trimming.
func IncrementalAdd(g delta.Graph, st *State, batch graph.EdgeList, opt Options) Stats {
	return IncrementalAddParts(g, st, [][]graph.Edge{batch}, opt)
}

// IncrementalAddParts is IncrementalAdd for a batch supplied as several
// disjoint parts (e.g. the merged Triangular Grid labels a compressed
// schedule edge spans): all parts seed together and a single propagation
// pass runs to fixpoint.
func IncrementalAddParts(g delta.Graph, st *State, parts [][]graph.Edge, opt Options) Stats {
	var stats Stats
	batchLen := 0
	for _, batch := range parts {
		batchLen += len(batch)
	}
	sp := opt.Span.StartChild("engine.incremental", obs.Int("batch", batchLen))
	id := st.a.Identity()
	var seeds []graph.VertexID
	for _, batch := range parts {
		for _, e := range batch {
			uval := st.Value(e.Src)
			if uval == id {
				continue
			}
			stats.EdgesPushed++
			cand := st.a.Propagate(uval, e.W)
			if st.TryImprove(e.Dst, cand, e.Src) {
				stats.Improved++
				seeds = append(seeds, e.Dst)
			}
		}
	}
	if len(seeds) > 0 {
		s := Propagate(g, st, seeds, opt)
		stats.add(s)
	}
	sp.SetAttr(statAttrs(stats)...)
	sp.End()
	return stats
}

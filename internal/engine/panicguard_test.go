package engine

import (
	"strings"
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/graph"
)

// panicAlgo is SSSP with a Propagate that always panics — a stand-in for
// a buggy vertex program running inside the worker pools.
type panicAlgo struct{ algo.SSSP }

func (panicAlgo) Propagate(algo.Value, graph.Weight) algo.Value {
	panic("vertex program bug")
}

// starGraph returns a hub with leaves out-edges, big enough to push one
// iteration past seqEdgeCutoff so the parallel pools engage.
func starGraph(leaves int) *graph.Pair {
	edges := make([]graph.Edge, leaves)
	for i := range edges {
		edges[i] = graph.Edge{Src: 0, Dst: graph.VertexID(i + 1), W: 1}
	}
	return graph.NewPair(leaves+1, edges)
}

// TestWorkerPanicContained proves a panic on a pool worker resurfaces on
// the coordinating goroutine (where internal/core's recoverToError can
// contain it) instead of crashing the process, and that the pool still
// drains — wg.Wait returns, no worker is left in cond.Wait.
func TestWorkerPanicContained(t *testing.T) {
	g := starGraph(3 * seqEdgeCutoff)
	for _, opt := range []Options{
		{Mode: Sync, Workers: 4},
		{Mode: Async, AsyncWorkers: 4},
	} {
		opt := opt
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("opts %+v: worker panic did not reach the coordinator", opt)
				}
				wp, ok := r.(workerPanic)
				if !ok {
					t.Fatalf("opts %+v: recovered %T, want workerPanic", opt, r)
				}
				if !strings.Contains(wp.String(), "vertex program bug") {
					t.Fatalf("opts %+v: panic value lost: %s", opt, wp)
				}
				if len(wp.stack) == 0 {
					t.Fatalf("opts %+v: worker stack not captured", opt)
				}
			}()
			Run(g, panicAlgo{}, 0, opt)
		}()
	}
}

// TestWorkerPanicFirstWins: concurrent sibling panics collapse to one
// captured value; the rest are dropped, not re-raised later.
func TestWorkerPanicFirstWins(t *testing.T) {
	var box panicBox
	box.store("first")
	box.store("second")
	defer func() {
		wp, ok := recover().(workerPanic)
		if !ok || wp.val != "first" {
			t.Fatalf("rethrow raised %v, want the first stored panic", wp)
		}
	}()
	box.rethrow()
}

package engine

import (
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
)

func testGraph(seed uint64, scale, m int) (*graph.Pair, int) {
	n, edges := gen.RMAT(gen.DefaultRMAT(scale, m, seed))
	return graph.NewPair(n, edges), n
}

func TestRunMatchesReferenceAllAlgorithms(t *testing.T) {
	g, _ := testGraph(1, 9, 3000)
	src := graph.VertexID(0)
	for _, a := range algo.All() {
		for _, mode := range []Mode{Sync, Async} {
			st, stats := Run(g, a, src, Options{Mode: mode})
			ref := Reference(g, a, src)
			if !ValuesEqual(st, ref) {
				t.Fatalf("%s mode=%d: values differ from reference", a.Name(), mode)
			}
			if stats.EdgesPushed == 0 {
				t.Fatalf("%s: no work recorded", a.Name())
			}
		}
	}
}

func TestSyncParallelWidths(t *testing.T) {
	g, _ := testGraph(2, 10, 8000)
	a := algo.SSSP{}
	ref := Reference(g, a, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		st, _ := Run(g, a, 0, Options{Mode: Sync, Workers: workers})
		if !ValuesEqual(st, ref) {
			t.Fatalf("workers=%d: wrong values", workers)
		}
	}
}

func TestAutoModePolicies(t *testing.T) {
	g, _ := testGraph(3, 8, 1000)
	// From-scratch runs resolve Auto to Sync: they touch the whole graph.
	_, stats := Run(g, algo.BFS{}, 0, Options{Mode: Auto})
	if stats.Iterations == 0 {
		t.Fatal("auto from-scratch run should iterate synchronously")
	}
	// Explicit Async still forces the worklist.
	_, stats = Run(g, algo.BFS{}, 0, Options{Mode: Async})
	if stats.Iterations != 0 {
		t.Fatalf("async run reported %d sync iterations", stats.Iterations)
	}
	// Incremental propagation with a tiny seed picks Async under Auto.
	st, _ := Run(g, algo.BFS{}, 0, Options{})
	stats = Propagate(g, st, []graph.VertexID{0}, Options{Mode: Auto})
	if stats.Iterations != 0 {
		t.Fatalf("auto with tiny seed should run async, got %d iterations", stats.Iterations)
	}
	// ... and Sync when the seed exceeds the threshold.
	seeds := make([]graph.VertexID, 64)
	for i := range seeds {
		seeds[i] = graph.VertexID(i)
	}
	stats = Propagate(g, st, seeds, Options{Mode: Auto, AsyncThreshold: 8})
	if stats.Iterations == 0 {
		t.Fatal("auto with large seed should run sync")
	}
}

func TestUnreachableVerticesKeepIdentity(t *testing.T) {
	// 0->1, isolated 2.
	edges := graph.EdgeList{{Src: 0, Dst: 1, W: 3}}
	g := graph.NewPair(3, edges)
	st, _ := Run(g, algo.SSSP{}, 0, Options{})
	if st.Value(1) != 3 {
		t.Fatalf("val(1)=%d", st.Value(1))
	}
	if st.Value(2) != algo.Infinity {
		t.Fatalf("val(2)=%d", st.Value(2))
	}
	if st.Reached() != 2 {
		t.Fatalf("reached=%d", st.Reached())
	}
}

func TestParentInvariant(t *testing.T) {
	// For every reached non-source vertex v, parent p must be a real
	// in-neighbour and propagating p's value along that edge must yield
	// exactly v's value — the dependence-tree invariant trimming relies on.
	g, n := testGraph(4, 9, 4000)
	for _, a := range algo.All() {
		st, _ := Run(g, a, 0, Options{Mode: Sync, Workers: 4})
		for v := 0; v < n; v++ {
			val := st.Value(graph.VertexID(v))
			p := st.Parent(graph.VertexID(v))
			if v == 0 || val == a.Identity() {
				if v == 0 && p != graph.NoVertex {
					t.Fatalf("%s: source has parent %d", a.Name(), p)
				}
				continue
			}
			if p == graph.NoVertex {
				t.Fatalf("%s: reached vertex %d has no parent", a.Name(), v)
			}
			found := false
			g.InEdges(graph.VertexID(v), func(u graph.VertexID, w graph.Weight) {
				if u == p && a.Propagate(st.Value(u), w) == val {
					found = true
				}
			})
			if !found {
				t.Fatalf("%s: vertex %d value %d not justified by parent %d", a.Name(), v, val, p)
			}
		}
	}
}

func TestIncrementalAddMatchesScratch(t *testing.T) {
	n, base := gen.RMAT(gen.DefaultRMAT(9, 2500, 5))
	trs, err := gen.Stream(n, base, gen.StreamConfig{Transitions: 1, Additions: 120, Deletions: 0, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	add := trs[0].Additions
	basePair := graph.NewPair(n, base)
	for _, a := range algo.All() {
		st, _ := Run(basePair, a, 0, Options{})
		og := delta.NewOverlayGraph(basePair, delta.NewOverlay(n, delta.MustFromCanonical(add)))
		IncrementalAdd(og, st, add, Options{})
		ref := Reference(og, a, 0)
		if !ValuesEqual(st, ref) {
			t.Fatalf("%s: incremental add diverged from scratch", a.Name())
		}
	}
}

func TestIncrementalAddBothModes(t *testing.T) {
	n, base := gen.RMAT(gen.DefaultRMAT(9, 2500, 8))
	trs, _ := gen.Stream(n, base, gen.StreamConfig{Transitions: 1, Additions: 200, Deletions: 0, Seed: 9})
	add := trs[0].Additions
	basePair := graph.NewPair(n, base)
	og := delta.NewOverlayGraph(basePair, delta.NewOverlay(n, delta.MustFromCanonical(add)))
	ref := Reference(og, algo.SSWP{}, 0)
	for _, mode := range []Mode{Sync, Async} {
		st, _ := Run(basePair, algo.SSWP{}, 0, Options{})
		IncrementalAdd(og, st, add, Options{Mode: mode})
		if !ValuesEqual(st, ref) {
			t.Fatalf("mode=%d diverged", mode)
		}
	}
}

func TestIncrementalAddFromUnreachedSource(t *testing.T) {
	// Additions whose sources are unreached must not propagate identity.
	edges := graph.EdgeList{{Src: 0, Dst: 1, W: 1}}
	g := graph.NewPair(4, edges)
	st, _ := Run(g, algo.BFS{}, 0, Options{})
	add := graph.EdgeList{{Src: 2, Dst: 3, W: 1}}.Canonicalize()
	og := delta.NewOverlayGraph(g, delta.NewOverlay(4, delta.MustFromCanonical(add)))
	IncrementalAdd(og, st, add, Options{})
	if st.Value(3) != algo.Infinity {
		t.Fatalf("val(3)=%d, identity must not propagate", st.Value(3))
	}
}

func TestCloneIndependence(t *testing.T) {
	g, _ := testGraph(7, 8, 1000)
	st, _ := Run(g, algo.BFS{}, 0, Options{})
	c := st.Clone()
	if !st.Equal(c) {
		t.Fatal("clone differs")
	}
	c.Reset(1, 0, graph.NoVertex)
	if st.Value(1) == 0 && st.Parent(1) == graph.NoVertex && c.Value(1) == st.Value(1) {
		t.Fatal("clone aliases original")
	}
	if st.Equal(c) == (st.Value(1) != 0) {
		t.Fatal("Equal did not detect divergence")
	}
}

func TestStatePackUnpack(t *testing.T) {
	cases := []struct {
		v algo.Value
		p graph.VertexID
	}{
		{0, 0},
		{algo.Infinity, graph.NoVertex},
		{algo.NegInfinity, 12345},
		{-7, 1},
		{algo.FixedOne, 99},
	}
	for _, c := range cases {
		v, p := unpack(pack(c.v, c.p))
		if v != c.v || p != c.p {
			t.Fatalf("pack/unpack (%d,%d) -> (%d,%d)", c.v, c.p, v, p)
		}
	}
}

func TestValuesSnapshot(t *testing.T) {
	g, n := testGraph(9, 7, 400)
	st, _ := Run(g, algo.BFS{}, 0, Options{})
	vals := st.Values()
	if len(vals) != n {
		t.Fatalf("len=%d", len(vals))
	}
	for i, v := range vals {
		if v != st.Value(graph.VertexID(i)) {
			t.Fatalf("values[%d] mismatch", i)
		}
	}
}

func TestFrontierOps(t *testing.T) {
	f := newFrontier(130)
	if !f.empty() || f.count() != 0 {
		t.Fatal("new frontier not empty")
	}
	f.setSeq(0)
	f.setSeq(64)
	f.setSeq(129)
	f.setSeq(129) // idempotent
	if f.count() != 3 || f.empty() {
		t.Fatalf("count=%d", f.count())
	}
	if !f.isSparse() || len(f.list()) != 3 {
		t.Fatalf("expected exact sparse list, got dense=%v list=%v", !f.isSparse(), f.list())
	}
	if !f.has(64) || f.has(63) {
		t.Fatal("membership wrong")
	}
	var got []graph.VertexID
	f.forEachInWordRange(0, f.words(), func(v graph.VertexID) { got = append(got, v) })
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Fatalf("iterate got %v", got)
	}
	f.clear()
	if !f.empty() {
		t.Fatal("clear failed")
	}
	// trySet maintains only the bitset; adopt publishes the list.
	if !f.trySet(5) || f.trySet(5) {
		t.Fatal("trySet not exactly-once")
	}
	f.adopt([]graph.VertexID{5})
	if !f.isSparse() || f.count() != 1 || !f.has(5) {
		t.Fatal("adopt failed")
	}
	f.clear()
	if f.has(5) || !f.empty() {
		t.Fatal("sparse clear failed")
	}
}

// TestFrontierSwitchover pins the sparse→dense representation switch: past
// n/sparseKeepDenom active vertices the exact list is dropped and the
// frontier reports dense, while membership stays authoritative in the
// bitset throughout.
func TestFrontierSwitchover(t *testing.T) {
	const n = 16 * 10 // threshold at 10 vertices
	f := newFrontier(n)
	limit := n / sparseKeepDenom
	for v := 0; v < limit; v++ {
		f.setSeq(graph.VertexID(v))
		if !f.isSparse() {
			t.Fatalf("dropped to dense at %d (limit %d)", v+1, limit)
		}
	}
	f.setSeq(graph.VertexID(limit)) // crosses len*16 > n
	if f.isSparse() {
		t.Fatal("expected dense past threshold")
	}
	if f.count() != limit+1 {
		t.Fatalf("dense count=%d want %d", f.count(), limit+1)
	}
	for v := 0; v <= limit; v++ {
		if !f.has(graph.VertexID(v)) {
			t.Fatalf("lost membership of %d after switchover", v)
		}
	}
	f.setSeq(graph.VertexID(limit)) // idempotent while dense
	if f.count() != limit+1 {
		t.Fatal("dense setSeq not idempotent")
	}
	f.clear()
	if !f.empty() || !f.isSparse() {
		t.Fatal("clear must reset to sparse")
	}
	// adopt with an oversized list degrades to dense immediately.
	big := make([]graph.VertexID, limit+1)
	for i := range big {
		big[i] = graph.VertexID(i)
		f.trySet(big[i])
	}
	f.adopt(big)
	if f.isSparse() {
		t.Fatal("oversized adopt must drop to dense")
	}
	if f.count() != limit+1 {
		t.Fatalf("count=%d", f.count())
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := Stats{Iterations: 1, EdgesPushed: 10, Improved: 2}
	a.add(Stats{Iterations: 2, EdgesPushed: 5, Improved: 1})
	if a.Iterations != 3 || a.EdgesPushed != 15 || a.Improved != 3 {
		t.Fatalf("%+v", a)
	}
}

package engine

import (
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/graph"
)

func TestSelfLoopsAreHarmless(t *testing.T) {
	// A self loop can never strictly improve its own vertex (monotonic
	// strictness), so propagation terminates and values ignore it.
	edges := graph.EdgeList{
		{Src: 0, Dst: 0, W: 1},
		{Src: 0, Dst: 1, W: 2},
		{Src: 1, Dst: 1, W: 3},
	}
	g := graph.NewPair(2, edges)
	for _, a := range algo.All() {
		st, _ := Run(g, a, 0, Options{})
		ref := Reference(g, a, 0)
		if !ValuesEqual(st, ref) {
			t.Fatalf("%s: self loops broke the fixpoint", a.Name())
		}
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.NewPair(1, nil)
	st, stats := Run(g, algo.SSSP{}, 0, Options{})
	if st.Value(0) != 0 || st.Reached() != 1 {
		t.Fatalf("val=%d reached=%d", st.Value(0), st.Reached())
	}
	if stats.Improved != 0 {
		t.Fatalf("no edges, but %d improvements", stats.Improved)
	}
}

func TestIsolatedSource(t *testing.T) {
	edges := graph.EdgeList{{Src: 1, Dst: 2, W: 1}}
	g := graph.NewPair(3, edges)
	st, _ := Run(g, algo.BFS{}, 0, Options{})
	if st.Reached() != 1 {
		t.Fatalf("isolated source reached %d vertices", st.Reached())
	}
}

func TestSourceOnCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0: cyclic propagation must still terminate with the
	// source keeping its source value (no path improves on it).
	edges := graph.EdgeList{
		{Src: 0, Dst: 1, W: 1},
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 0, W: 1},
	}
	g := graph.NewPair(3, edges)
	for _, a := range algo.All() {
		st, _ := Run(g, a, 0, Options{})
		if st.Value(0) != a.SourceValue() {
			t.Fatalf("%s: source value corrupted to %d", a.Name(), st.Value(0))
		}
		ref := Reference(g, a, 0)
		if !ValuesEqual(st, ref) {
			t.Fatalf("%s: cycle fixpoint wrong", a.Name())
		}
	}
}

func TestIncrementalAddEmptyBatch(t *testing.T) {
	g := graph.NewPair(3, graph.EdgeList{{Src: 0, Dst: 1, W: 1}})
	st, _ := Run(g, algo.BFS{}, 0, Options{})
	before := st.Clone()
	stats := IncrementalAdd(g, st, nil, Options{})
	if stats.EdgesPushed != 0 || stats.Improved != 0 {
		t.Fatalf("empty batch did work: %+v", stats)
	}
	if !st.Equal(before) {
		t.Fatal("empty batch changed state")
	}
}

func TestIncrementalAddPartsEquivalence(t *testing.T) {
	// Splitting a batch into parts must land on the same fixpoint as the
	// whole batch at once.
	baseEdges := graph.EdgeList{
		{Src: 0, Dst: 1, W: 4},
		{Src: 1, Dst: 2, W: 4},
	}
	batch := graph.EdgeList{
		{Src: 0, Dst: 2, W: 3},
		{Src: 2, Dst: 3, W: 1},
		{Src: 0, Dst: 3, W: 9},
	}.Canonicalize()
	n := 4
	base := graph.NewPair(n, baseEdges)
	og := delta.NewOverlayGraph(base, delta.NewOverlay(n, delta.MustFromCanonical(batch)))

	whole, _ := Run(base, algo.SSSP{}, 0, Options{})
	IncrementalAdd(og, whole, batch, Options{})

	parts, _ := Run(base, algo.SSSP{}, 0, Options{})
	IncrementalAddParts(og, parts, [][]graph.Edge{batch[:1], batch[1:]}, Options{})

	if !whole.Equal(parts) {
		t.Fatal("parts-based incremental add diverged")
	}
}

func TestReachedAndEqualDegenerate(t *testing.T) {
	a := NewState(3, algo.BFS{}, 0)
	b := NewState(4, algo.BFS{}, 0)
	if a.Equal(b) {
		t.Fatal("states of different sizes compared equal")
	}
	if a.Source() != 0 || a.Algorithm().Name() != "BFS" {
		t.Fatal("accessors wrong")
	}
	if a.NumVertices() != 3 {
		t.Fatal("size wrong")
	}
	if v, p := a.Load(0); v != 0 || p != graph.NoVertex {
		t.Fatalf("Load(0) = (%d,%d)", v, p)
	}
}

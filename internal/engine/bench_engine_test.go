package engine

import (
	"testing"

	"commongraph/internal/algo"
	"commongraph/internal/delta"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
)

// The BenchmarkEngine* family is the hot-path regression suite: it is
// snapshotted per PR (bench/engine-PR<n>.txt) and compared with benchstat
// by `make perf-smoke`. Names must stay stable across PRs.

// benchSkewed is the power-law workload: R-MAT's skewed degree
// distribution produces hub vertices whose rows dwarf the median, the
// shape that breaks static frontier sharding.
func benchSkewed(b *testing.B) (*graph.Pair, int) {
	b.Helper()
	n, edges := gen.RMAT(gen.DefaultRMAT(15, 400_000, 3))
	return graph.NewPair(n, edges), n
}

// benchHub is the adversarial single-hub graph: a chain feeds one vertex
// whose out-row spans almost the whole vertex set, so any scheduler that
// assigns whole vertices statically serializes on it.
func benchHub(b *testing.B) (*graph.Pair, int) {
	b.Helper()
	const n = 1 << 15
	edges := make(graph.EdgeList, 0, 2*n)
	// Short chain into the hub so the hub activates after a few levels.
	for i := 0; i < 4; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), W: 1})
	}
	hub := graph.VertexID(4)
	for v := 8; v < n; v++ {
		edges = append(edges, graph.Edge{Src: hub, Dst: graph.VertexID(v), W: gen.WeightOf(hub, graph.VertexID(v))})
	}
	return graph.NewPair(n, edges.Canonicalize()), n
}

// BenchmarkEngineSyncPass measures the level-synchronous from-scratch
// solve on the skewed workload — the sync-pass cost every strategy's
// common-graph solve pays.
func BenchmarkEngineSyncPass(b *testing.B) {
	g, _ := benchSkewed(b)
	for _, a := range []algo.Algorithm{algo.BFS{}, algo.SSSP{}} {
		a := a
		b.Run(a.Name(), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Run(g, a, 0, Options{Mode: Sync})
			}
		})
	}
}

// BenchmarkEngineSyncHub measures the sync pass on the single-hub graph:
// the iteration where the hub is the whole frontier is the degenerate
// load-balance case.
func BenchmarkEngineSyncHub(b *testing.B) {
	g, _ := benchHub(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, algo.SSSP{}, 0, Options{Mode: Sync})
	}
}

// BenchmarkEngineSyncSmallFrontier forces Sync mode onto a tiny seed: the
// cost here is dominated by frontier bookkeeping (scan + clear), not edge
// work — the case the sparse representation exists for.
func BenchmarkEngineSyncSmallFrontier(b *testing.B) {
	g, _ := benchSkewed(b)
	base, _ := Run(g, algo.SSSP{}, 0, Options{Mode: Sync})
	seeds := []graph.VertexID{1, 17, 33}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := base.Clone()
		b.StartTimer()
		Propagate(g, st, seeds, Options{Mode: Sync})
	}
}

// BenchmarkEngineAsyncWorklist measures the asynchronous worklist from
// scratch on the skewed workload.
func BenchmarkEngineAsyncWorklist(b *testing.B) {
	g, _ := benchSkewed(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(g, algo.BFS{}, 0, Options{Mode: Async})
	}
}

// BenchmarkEngineIncrementalAdd measures the incremental-addition
// primitive under the Auto scheduler — the per-hop cost of the
// CommonGraph strategies.
func BenchmarkEngineIncrementalAdd(b *testing.B) {
	g, n := benchSkewed(b)
	trs, err := gen.Stream(n, g.Out.Edges(), gen.StreamConfig{Transitions: 1, Additions: 4000, Deletions: 0, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	add := trs[0].Additions
	ov := delta.NewOverlay(n, delta.MustFromCanonical(add))
	og := delta.NewOverlayGraph(g, ov)
	base, _ := Run(g, algo.SSSP{}, 0, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := base.Clone()
		b.StartTimer()
		IncrementalAdd(og, st, add, Options{})
	}
}

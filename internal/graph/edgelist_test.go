package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func el(pairs ...[2]uint32) EdgeList {
	out := make(EdgeList, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, Edge{Src: VertexID(p[0]), Dst: VertexID(p[1]), W: 1})
	}
	return out
}

func TestCanonicalize(t *testing.T) {
	l := el([2]uint32{2, 1}, [2]uint32{0, 5}, [2]uint32{2, 1}, [2]uint32{0, 3})
	c := l.Canonicalize()
	want := el([2]uint32{0, 3}, [2]uint32{0, 5}, [2]uint32{2, 1})
	if !Equal(c, want) {
		t.Fatalf("got %v want %v", c, want)
	}
	if !c.IsCanonical() {
		t.Fatal("result not canonical")
	}
}

func TestCanonicalizeEmpty(t *testing.T) {
	var l EdgeList
	if got := l.Canonicalize(); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestCanonicalizeKeepsFirstWeight(t *testing.T) {
	l := EdgeList{{Src: 1, Dst: 2, W: 7}, {Src: 1, Dst: 2, W: 9}}
	c := l.Canonicalize()
	if len(c) != 1 {
		t.Fatalf("len=%d", len(c))
	}
	// Sort is not stable across equal keys in general, but both weights
	// identify the same edge; only endpoints matter for identity.
	if c[0].Src != 1 || c[0].Dst != 2 {
		t.Fatalf("got %v", c[0])
	}
}

func TestMinus(t *testing.T) {
	a := el([2]uint32{0, 1}, [2]uint32{0, 2}, [2]uint32{1, 2}, [2]uint32{3, 0})
	b := el([2]uint32{0, 2}, [2]uint32{2, 2}, [2]uint32{3, 0})
	got := Minus(a, b)
	want := el([2]uint32{0, 1}, [2]uint32{1, 2})
	if !Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestUnionIntersect(t *testing.T) {
	a := el([2]uint32{0, 1}, [2]uint32{1, 2})
	b := el([2]uint32{0, 1}, [2]uint32{2, 3})
	u := Union(a, b)
	wantU := el([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{2, 3})
	if !Equal(u, wantU) {
		t.Fatalf("union got %v want %v", u, wantU)
	}
	i := Intersect(a, b)
	wantI := el([2]uint32{0, 1})
	if !Equal(i, wantI) {
		t.Fatalf("intersect got %v want %v", i, wantI)
	}
}

func TestContains(t *testing.T) {
	a := el([2]uint32{0, 1}, [2]uint32{1, 2}, [2]uint32{5, 9})
	if !a.Contains(1, 2) {
		t.Fatal("missing 1->2")
	}
	if a.Contains(1, 3) {
		t.Fatal("phantom 1->3")
	}
	if a.Contains(9, 5) {
		t.Fatal("phantom 9->5")
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	cases := [][2]VertexID{{0, 0}, {1, 2}, {NoVertex - 1, 7}, {12345, 678910}}
	for _, c := range cases {
		k := MakeKey(c[0], c[1])
		if k.Src() != c[0] || k.Dst() != c[1] {
			t.Fatalf("round trip failed for %v: got (%d,%d)", c, k.Src(), k.Dst())
		}
	}
}

// randomCanonical builds a random canonical edge list over n vertices.
func randomCanonical(r *rand.Rand, n, m int) EdgeList {
	l := make(EdgeList, 0, m)
	for i := 0; i < m; i++ {
		l = append(l, Edge{
			Src: VertexID(r.Intn(n)),
			Dst: VertexID(r.Intn(n)),
			W:   Weight(r.Intn(100) + 1),
		})
	}
	return l.Canonicalize()
}

func TestSetAlgebraProperties(t *testing.T) {
	// For random canonical a, b:
	//   (a \ b) ∪ (a ∩ b) == a
	//   a ∩ b == b ∩ a  (by endpoints)
	//   (a ∪ b) \ b == a \ b
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCanonical(r, 40, 80)
		b := randomCanonical(r, 40, 80)
		if !Equal(Union(Minus(a, b), Intersect(a, b)), a) {
			return false
		}
		if !Equal(Intersect(a, b), Intersect(b, a)) {
			return false
		}
		if !Equal(Minus(Union(a, b), b), Minus(a, b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetOpsPreserveCanonical(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCanonical(r, 30, 60)
		b := randomCanonical(r, 30, 60)
		return Minus(a, b).IsCanonical() &&
			Union(a, b).IsCanonical() &&
			Intersect(a, b).IsCanonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinusDisjointAndSelf(t *testing.T) {
	a := el([2]uint32{0, 1}, [2]uint32{1, 2})
	if got := Minus(a, a); len(got) != 0 {
		t.Fatalf("a\\a = %v", got)
	}
	b := el([2]uint32{4, 5})
	if got := Minus(a, b); !Equal(got, a) {
		t.Fatalf("a\\disjoint = %v", got)
	}
}

func TestKeySet(t *testing.T) {
	a := el([2]uint32{0, 1}, [2]uint32{1, 2})
	s := a.KeySet()
	if len(s) != 2 {
		t.Fatalf("len=%d", len(s))
	}
	if _, ok := s[MakeKey(0, 1)]; !ok {
		t.Fatal("missing key 0->1")
	}
}

func TestMaxVertex(t *testing.T) {
	if got := (EdgeList{}).MaxVertex(); got != -1 {
		t.Fatalf("empty MaxVertex=%d", got)
	}
	a := el([2]uint32{0, 9}, [2]uint32{4, 2})
	if got := a.MaxVertex(); got != 9 {
		t.Fatalf("MaxVertex=%d", got)
	}
}

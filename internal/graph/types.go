// Package graph provides the static graph substrate used throughout the
// CommonGraph system: vertex and edge types, edge lists, compressed sparse
// row (CSR) representations in both directions, and text/binary I/O.
//
// Everything here is immutable once built. Mutable adjacency (needed only
// by the KickStarter baseline, which mutates graphs in place) lives in
// internal/kickstarter; mutation-free overlays live in internal/delta.
package graph

import (
	"fmt"
	"math"
)

// VertexID identifies a vertex. Vertices are dense integers in [0, n).
type VertexID uint32

// NoVertex is a sentinel meaning "no vertex" (used for absent parents).
const NoVertex VertexID = math.MaxUint32

// Weight is an edge weight. All five benchmark algorithms operate on
// int32 weights; Viterbi interprets weights as Q2.30 fixed-point
// probabilities in (0, 1] (see internal/algo).
type Weight int32

// Edge is a directed, weighted edge.
type Edge struct {
	Src VertexID
	Dst VertexID
	W   Weight
}

// EdgeKey uniquely identifies an edge by its endpoints. Two edges with the
// same endpoints are considered the same edge: update streams never carry
// parallel edges, and a (re-)added edge keeps its weight (weights are a
// deterministic function of the endpoints in all our generators).
type EdgeKey uint64

// Key returns the edge's identity key.
func (e Edge) Key() EdgeKey { return MakeKey(e.Src, e.Dst) }

// MakeKey packs (src, dst) into an EdgeKey.
func MakeKey(src, dst VertexID) EdgeKey {
	return EdgeKey(uint64(src)<<32 | uint64(dst))
}

// Src returns the source endpoint encoded in the key.
func (k EdgeKey) Src() VertexID { return VertexID(k >> 32) }

// Dst returns the destination endpoint encoded in the key.
func (k EdgeKey) Dst() VertexID { return VertexID(k & 0xffffffff) }

// String renders an edge as "src->dst(w)".
func (e Edge) String() string {
	return fmt.Sprintf("%d->%d(%d)", e.Src, e.Dst, e.W)
}

// Less orders edges by (src, dst).
func (e Edge) Less(o Edge) bool {
	if e.Src != o.Src {
		return e.Src < o.Src
	}
	return e.Dst < o.Dst
}

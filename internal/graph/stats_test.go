package graph

import (
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	edges := EdgeList{
		{Src: 0, Dst: 1, W: 1},
		{Src: 0, Dst: 2, W: 1},
		{Src: 1, Dst: 2, W: 1},
	}
	s := ComputeStats("toy", 5, edges)
	if s.Vertices != 5 || s.Edges != 3 {
		t.Fatalf("%+v", s)
	}
	if s.MaxOutDeg != 2 {
		t.Fatalf("max out %d", s.MaxOutDeg)
	}
	if s.MaxInDeg != 2 {
		t.Fatalf("max in %d", s.MaxInDeg)
	}
	if s.Isolated != 2 { // vertices 3 and 4
		t.Fatalf("isolated %d", s.Isolated)
	}
	if s.AvgDegree != 0.6 {
		t.Fatalf("avg %f", s.AvgDegree)
	}
	if !strings.Contains(s.String(), "toy") {
		t.Fatalf("string: %s", s.String())
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats("empty", 0, nil)
	if s.AvgDegree != 0 || s.Vertices != 0 || s.Edges != 0 {
		t.Fatalf("%+v", s)
	}
}

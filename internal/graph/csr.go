package graph

// CSR is a compressed-sparse-row adjacency: for vertex u, its outgoing
// (or, for a reverse CSR, incoming) half-edges occupy
// targets[offsets[u]:offsets[u+1]]. A CSR is immutable after construction.
type CSR struct {
	n       int
	offsets []int32
	targets []VertexID
	weights []Weight
}

// NewCSR builds a forward CSR over n vertices from an edge list.
// The input need not be sorted; it is counting-sorted by source internally.
func NewCSR(n int, edges []Edge) *CSR {
	return buildCSR(n, edges, false)
}

// NewReverseCSR builds a reverse CSR (rows are destinations, entries are
// sources) over n vertices from an edge list.
func NewReverseCSR(n int, edges []Edge) *CSR {
	return buildCSR(n, edges, true)
}

func buildCSR(n int, edges []Edge, reverse bool) *CSR {
	c := &CSR{
		n:       n,
		offsets: make([]int32, n+1),
		targets: make([]VertexID, len(edges)),
		weights: make([]Weight, len(edges)),
	}
	if !reverse && sortedBySrc(edges) {
		// Fast path: the input is already grouped by source (canonical
		// lists always are), so rows are contiguous — one linear pass.
		for i, e := range edges {
			c.offsets[e.Src+1] = int32(i + 1)
			c.targets[i] = e.Dst
			c.weights[i] = e.W
		}
		for i := 1; i <= n; i++ {
			if c.offsets[i] == 0 {
				c.offsets[i] = c.offsets[i-1]
			}
		}
		return c
	}
	row := func(e Edge) VertexID {
		if reverse {
			return e.Dst
		}
		return e.Src
	}
	col := func(e Edge) VertexID {
		if reverse {
			return e.Src
		}
		return e.Dst
	}
	for _, e := range edges {
		c.offsets[row(e)+1]++
	}
	for i := 0; i < n; i++ {
		c.offsets[i+1] += c.offsets[i]
	}
	cursor := make([]int32, n)
	for _, e := range edges {
		r := row(e)
		p := c.offsets[r] + cursor[r]
		cursor[r]++
		c.targets[p] = col(e)
		c.weights[p] = e.W
	}
	return c
}

// sortedBySrc reports whether edges are grouped in non-decreasing source
// order (canonical edge lists are).
func sortedBySrc(edges []Edge) bool {
	for i := 1; i < len(edges); i++ {
		if edges[i].Src < edges[i-1].Src {
			return false
		}
	}
	return true
}

// NewCSRParts builds a forward CSR over the union of several edge lists
// without materializing their concatenation: one counting pass over the
// parts, then a placement pass. The parts must be mutually disjoint.
func NewCSRParts(n int, parts ...[]Edge) *CSR {
	m := 0
	for _, p := range parts {
		m += len(p)
	}
	c := &CSR{
		n:       n,
		offsets: make([]int32, n+1),
		targets: make([]VertexID, m),
		weights: make([]Weight, m),
	}
	for _, p := range parts {
		for _, e := range p {
			c.offsets[e.Src+1]++
		}
	}
	for i := 0; i < n; i++ {
		c.offsets[i+1] += c.offsets[i]
	}
	cursor := make([]int32, n)
	for _, p := range parts {
		for _, e := range p {
			pos := c.offsets[e.Src] + cursor[e.Src]
			cursor[e.Src]++
			c.targets[pos] = e.Dst
			c.weights[pos] = e.W
		}
	}
	return c
}

// NumVertices returns the number of vertices.
func (c *CSR) NumVertices() int { return c.n }

// NumEdges returns the number of stored half-edges.
func (c *CSR) NumEdges() int { return len(c.targets) }

// Degree returns the number of entries in vertex u's row.
func (c *CSR) Degree(u VertexID) int {
	return int(c.offsets[u+1] - c.offsets[u])
}

// Neighbors calls fn for each entry in u's row.
func (c *CSR) Neighbors(u VertexID, fn func(v VertexID, w Weight)) {
	for p := c.offsets[u]; p < c.offsets[u+1]; p++ {
		fn(c.targets[p], c.weights[p])
	}
}

// Row returns u's row as parallel slices (aliased, do not modify).
func (c *CSR) Row(u VertexID) ([]VertexID, []Weight) {
	lo, hi := c.offsets[u], c.offsets[u+1]
	return c.targets[lo:hi], c.weights[lo:hi]
}

// Offsets, Targets and Weights expose the CSR's backing arrays for flat
// traversal: vertex u's half-edges occupy positions
// [Offsets()[u], Offsets()[u+1]) of Targets() and Weights(). The slices
// alias the CSR — they are read-only by the §4.1 immutability contract
// (enforced for the fields themselves by cgvet's csrimmutable analyzer);
// callers must never write through them. The engine's hot loops index
// these directly instead of paying a closure call per edge (Neighbors).
func (c *CSR) Offsets() []int32 { return c.offsets }

// Targets returns the neighbor array (see Offsets).
func (c *CSR) Targets() []VertexID { return c.targets }

// Weights returns the weight array (see Offsets).
func (c *CSR) Weights() []Weight { return c.weights }

// Edges reconstructs the edge list (forward orientation). For a reverse
// CSR the rows are destinations, so the caller should not use this.
func (c *CSR) Edges() EdgeList {
	out := make(EdgeList, 0, len(c.targets))
	for u := 0; u < c.n; u++ {
		for p := c.offsets[u]; p < c.offsets[u+1]; p++ {
			out = append(out, Edge{Src: VertexID(u), Dst: c.targets[p], W: c.weights[p]})
		}
	}
	return out
}

// Pair couples a forward and a reverse CSR over the same edge set; the
// engine needs out-edges for propagation and the trimming algorithm needs
// in-edges for recomputation.
type Pair struct {
	Out *CSR
	In  *CSR
}

// NewPair builds both orientations from one edge list.
func NewPair(n int, edges []Edge) *Pair {
	return &Pair{Out: NewCSR(n, edges), In: NewReverseCSR(n, edges)}
}

// NumVertices returns the number of vertices.
func (p *Pair) NumVertices() int { return p.Out.NumVertices() }

// NumEdges returns the number of edges.
func (p *Pair) NumEdges() int { return p.Out.NumEdges() }

// OutCSRs returns the out-adjacency as immutable CSR layers (a single
// layer for a plain pair) — the flat-traversal hook the engine probes for
// via delta.FlatSource.
func (p *Pair) OutCSRs() []*CSR { return []*CSR{p.Out} }

// OutEdges calls fn for each out-neighbour of u.
func (p *Pair) OutEdges(u VertexID, fn func(v VertexID, w Weight)) {
	p.Out.Neighbors(u, fn)
}

// InEdges calls fn for each in-neighbour of v.
func (p *Pair) InEdges(v VertexID, fn func(u VertexID, w Weight)) {
	p.In.Neighbors(v, fn)
}

package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCSRBasics(t *testing.T) {
	edges := EdgeList{
		{Src: 0, Dst: 1, W: 5},
		{Src: 0, Dst: 2, W: 3},
		{Src: 2, Dst: 1, W: 7},
	}
	c := NewCSR(4, edges)
	if c.NumVertices() != 4 || c.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", c.NumVertices(), c.NumEdges())
	}
	if c.Degree(0) != 2 || c.Degree(1) != 0 || c.Degree(2) != 1 || c.Degree(3) != 0 {
		t.Fatalf("degrees wrong")
	}
	var got EdgeList
	c.Neighbors(0, func(v VertexID, w Weight) {
		got = append(got, Edge{Src: 0, Dst: v, W: w})
	})
	if len(got) != 2 {
		t.Fatalf("neighbors of 0: %v", got)
	}
}

func TestCSRRow(t *testing.T) {
	edges := EdgeList{{Src: 1, Dst: 3, W: 2}, {Src: 1, Dst: 0, W: 4}}
	c := NewCSR(4, edges)
	vs, ws := c.Row(1)
	if len(vs) != 2 || len(ws) != 2 {
		t.Fatalf("row lengths %d %d", len(vs), len(ws))
	}
	vs, _ = c.Row(0)
	if len(vs) != 0 {
		t.Fatalf("row 0 should be empty")
	}
}

func TestReverseCSR(t *testing.T) {
	edges := EdgeList{
		{Src: 0, Dst: 2, W: 1},
		{Src: 1, Dst: 2, W: 9},
		{Src: 2, Dst: 0, W: 4},
	}
	r := NewReverseCSR(3, edges)
	var ins []VertexID
	r.Neighbors(2, func(u VertexID, w Weight) { ins = append(ins, u) })
	if len(ins) != 2 {
		t.Fatalf("in-neighbours of 2: %v", ins)
	}
	seen := map[VertexID]bool{}
	for _, u := range ins {
		seen[u] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("in-neighbours of 2: %v", ins)
	}
}

func TestCSREdgesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		edges := randomCanonical(r, n, 3*n)
		c := NewCSR(n, edges)
		back := c.Edges().Canonicalize()
		if !Equal(back, edges) {
			return false
		}
		// Weights must survive too.
		for i := range back {
			if back[i].W != edges[i].W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPairConsistency(t *testing.T) {
	// Every out-edge (u,v) must appear as an in-edge at v with same weight.
	r := rand.New(rand.NewSource(7))
	n := 30
	edges := randomCanonical(r, n, 120)
	p := NewPair(n, edges)
	if p.NumVertices() != n || p.NumEdges() != len(edges) {
		t.Fatalf("pair sizes wrong")
	}
	type half struct {
		a, b VertexID
		w    Weight
	}
	outs := map[half]int{}
	for u := 0; u < n; u++ {
		p.OutEdges(VertexID(u), func(v VertexID, w Weight) {
			outs[half{VertexID(u), v, w}]++
		})
	}
	ins := map[half]int{}
	for v := 0; v < n; v++ {
		p.InEdges(VertexID(v), func(u VertexID, w Weight) {
			ins[half{u, VertexID(v), w}]++
		})
	}
	if len(outs) != len(ins) {
		t.Fatalf("out %d vs in %d", len(outs), len(ins))
	}
	for k, c := range outs {
		if ins[k] != c {
			t.Fatalf("edge %v: out count %d in count %d", k, c, ins[k])
		}
	}
}

func TestCSRNoEdgesForEmptyGraph(t *testing.T) {
	c := NewCSR(5, nil)
	if c.NumEdges() != 0 {
		t.Fatal("expected zero edges")
	}
	for u := 0; u < 5; u++ {
		if c.Degree(VertexID(u)) != 0 {
			t.Fatalf("vertex %d degree %d", u, c.Degree(VertexID(u)))
		}
	}
}

package graph

import (
	"errors"
	"sort"
)

// EdgeList is a slice of edges with set-flavoured helpers. Most operations
// require or establish (src, dst) sorted order with no duplicates; such a
// list is called canonical.
type EdgeList []Edge

// Sort orders the list by (src, dst) in place.
func (el EdgeList) Sort() {
	sort.Slice(el, func(i, j int) bool { return el[i].Less(el[j]) })
}

// IsCanonical reports whether the list is sorted by (src, dst) with no
// duplicate endpoints.
func (el EdgeList) IsCanonical() bool {
	for i := 1; i < len(el); i++ {
		if !el[i-1].Less(el[i]) {
			return false
		}
	}
	return true
}

// Canonicalize sorts the list and removes duplicate (src, dst) pairs,
// keeping the first occurrence. It returns the (possibly shorter) list.
func (el EdgeList) Canonicalize() EdgeList {
	if len(el) == 0 {
		return el
	}
	el.Sort()
	out := el[:1]
	for _, e := range el[1:] {
		last := out[len(out)-1]
		if e.Src == last.Src && e.Dst == last.Dst {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Clone returns a deep copy.
func (el EdgeList) Clone() EdgeList {
	out := make(EdgeList, len(el))
	copy(out, el)
	return out
}

// MaxVertex returns the largest vertex id referenced, or -1 if empty.
func (el EdgeList) MaxVertex() int {
	max := -1
	for _, e := range el {
		if int(e.Src) > max {
			max = int(e.Src)
		}
		if int(e.Dst) > max {
			max = int(e.Dst)
		}
	}
	return max
}

// Contains reports whether a canonical list contains an edge with the given
// endpoints, using binary search.
func (el EdgeList) Contains(src, dst VertexID) bool {
	i := sort.Search(len(el), func(i int) bool {
		return !el[i].Less(Edge{Src: src, Dst: dst})
	})
	return i < len(el) && el[i].Src == src && el[i].Dst == dst
}

// ErrNotCanonical is returned by operations that require canonical input.
var ErrNotCanonical = errors.New("graph: edge list is not canonical (sorted, deduplicated)")

// Minus returns a \ b. Both lists must be canonical; the result is
// canonical. Identity is by endpoints only.
func Minus(a, b EdgeList) EdgeList {
	out := make(EdgeList, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Src == b[j].Src && a[i].Dst == b[j].Dst:
			i++
			j++
		case a[i].Less(b[j]):
			out = append(out, a[i])
			i++
		default:
			j++
		}
	}
	return append(out, a[i:]...)
}

// Union returns a ∪ b. Both lists must be canonical; the result is
// canonical. When an edge appears in both, a's copy (and weight) wins.
func Union(a, b EdgeList) EdgeList {
	out := make(EdgeList, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Src == b[j].Src && a[i].Dst == b[j].Dst:
			out = append(out, a[i])
			i++
			j++
		case a[i].Less(b[j]):
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Intersect returns a ∩ b. Both lists must be canonical; the result is
// canonical. a's weights win.
func Intersect(a, b EdgeList) EdgeList {
	out := make(EdgeList, 0)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Src == b[j].Src && a[i].Dst == b[j].Dst:
			out = append(out, a[i])
			i++
			j++
		case a[i].Less(b[j]):
			i++
		default:
			j++
		}
	}
	return out
}

// Equal reports whether two canonical lists contain the same endpoints in
// the same order (weights are ignored, matching edge identity).
func Equal(a, b EdgeList) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst {
			return false
		}
	}
	return true
}

// KeySet returns the set of edge keys in the list.
func (el EdgeList) KeySet() map[EdgeKey]struct{} {
	s := make(map[EdgeKey]struct{}, len(el))
	for _, e := range el {
		s[e.Key()] = struct{}{}
	}
	return s
}

package graph

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
)

// fuzzBound keeps CSR construction in fuzzing affordable: inputs are
// arbitrary, so vertex counts are capped before allocating offset arrays.
const fuzzBound = 1 << 15

// FuzzParseEdgeList covers the text ingest path: ReadText must never
// panic, must validate vertex ids against a declared header, and anything
// it accepts must survive a WriteText/ReadText round trip unchanged.
func FuzzParseEdgeList(f *testing.F) {
	seeds := []string{
		"# vertices 4 edges 2\n0 1 5\n2 3 1\n",
		"0 1\n1 2 3\n",
		"",
		"# a comment\n\n3 1 7\n",
		"# vertices 3 edges 1\n0 2\n",
		"# vertices 1 edges 1\n0 5\n",          // id out of declared range
		"# vertices 2 edges 1000000000\n0 1\n", // lying header count
		"a b\n",
		"1\n",
		"0 1 2 3\n",
		"0 1 notanumber\n",
		"4294967296 0\n", // id overflows uint32
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		n, edges, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		if n < 0 {
			t.Fatalf("accepted input with negative vertex count %d", n)
		}
		for _, e := range edges {
			if int(e.Src) >= n || int(e.Dst) >= n {
				t.Fatalf("accepted edge %v outside declared vertex range %d", e, n)
			}
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, n, edges); err != nil {
			t.Fatalf("WriteText on accepted input: %v", err)
		}
		n2, edges2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if n2 != n || len(edges2) != len(edges) {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)", n, len(edges), n2, len(edges2))
		}
		for i := range edges {
			if edges[i] != edges2[i] {
				t.Fatalf("round trip changed edge %d: %v -> %v", i, edges[i], edges2[i])
			}
		}
	})
}

// FuzzEdgeListIO is the cross-codec oracle: any input the text reader
// accepts must survive text→binary→text unchanged, and any input it
// rejects for a content reason must be rejected with a typed *ParseError
// carrying a plausible 1-based line number that appears in the message.
func FuzzEdgeListIO(f *testing.F) {
	seeds := []string{
		"# vertices 4 edges 2\n0 1 5\n2 3 1\n",
		"0 1\n1 2 3\n",
		"",
		"# vertices 3 edges 1\n\n0 2 -4\n",
		"0 1 x\n",
		"0\n",
		"# vertices 1 edges 1\n0 5\n",
		"9999999999 0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		n, edges, err := ReadText(bytes.NewReader(data))
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				// From an in-memory reader the only non-content failure is
				// the scanner's token limit; everything else must be typed.
				if !errors.Is(err, bufio.ErrTooLong) {
					t.Fatalf("ReadText rejection is not a *ParseError: %v", err)
				}
				return
			}
			if pe.Line < 1 {
				t.Fatalf("ParseError with non-positive line %d: %v", pe.Line, pe)
			}
			if lines := bytes.Count(data, []byte("\n")) + 1; pe.Line > lines {
				t.Fatalf("ParseError line %d beyond input's %d lines", pe.Line, lines)
			}
			if !strings.Contains(pe.Error(), "line ") || !strings.Contains(pe.Error(), pe.Reason) {
				t.Fatalf("ParseError message lost its context: %q", pe.Error())
			}
			return
		}
		if n > fuzzBound || len(edges) > fuzzBound {
			t.Skip("valid but too large to round-trip affordably under fuzzing")
		}
		var bin bytes.Buffer
		if err := WriteBinary(&bin, n, edges); err != nil {
			t.Fatalf("WriteBinary on accepted input: %v", err)
		}
		bn, bedges, err := ReadBinary(&bin)
		if err != nil {
			t.Fatalf("binary round trip rejected: %v", err)
		}
		var txt bytes.Buffer
		if err := WriteText(&txt, bn, bedges); err != nil {
			t.Fatalf("WriteText after binary trip: %v", err)
		}
		tn, tedges, err := ReadText(&txt)
		if err != nil {
			t.Fatalf("text round trip after binary trip rejected: %v", err)
		}
		if tn != n || len(tedges) != len(edges) {
			t.Fatalf("cross-codec trip changed shape: (%d,%d) -> (%d,%d)", n, len(edges), tn, len(tedges))
		}
		for i := range edges {
			if edges[i] != tedges[i] {
				t.Fatalf("cross-codec trip changed edge %d: %v -> %v", i, edges[i], tedges[i])
			}
		}
	})
}

// FuzzLoadCSR covers the binary ingest path through CSR construction:
// ReadBinary must never panic or overallocate on hostile headers, and a
// CSR built from any accepted input must satisfy its structural
// invariants (monotone offsets, consistent edge count, row/degree
// agreement).
func FuzzLoadCSR(f *testing.F) {
	seed := func(n int, edges EdgeList) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, n, edges); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(4, EdgeList{{Src: 0, Dst: 1, W: 5}, {Src: 2, Dst: 3, W: 1}}))
	f.Add(seed(1, nil))
	f.Add(seed(3, EdgeList{{Src: 2, Dst: 0, W: -7}, {Src: 0, Dst: 2, W: 9}, {Src: 1, Dst: 1, W: 0}}))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x0c, 0x33, 0xc0})                                     // magic only
	f.Add([]byte{0x01, 0x0c, 0x33, 0xc0, 2, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}) // lying edge count
	f.Fuzz(func(t *testing.T, data []byte) {
		n, edges, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range edges {
			if int(e.Src) >= n || int(e.Dst) >= n {
				t.Fatalf("ReadBinary accepted edge %v outside vertex range %d", e, n)
			}
		}
		if n > fuzzBound || len(edges) > fuzzBound {
			t.Skip("valid but too large to build affordably under fuzzing")
		}
		c := NewCSR(n, edges)
		if c.NumVertices() != n || c.NumEdges() != len(edges) {
			t.Fatalf("CSR shape (%d,%d) does not match input (%d,%d)",
				c.NumVertices(), c.NumEdges(), n, len(edges))
		}
		total := 0
		for u := 0; u < n; u++ {
			d := c.Degree(VertexID(u))
			if d < 0 {
				t.Fatalf("negative degree %d at vertex %d (offsets not monotone)", d, u)
			}
			row, weights := c.Row(VertexID(u))
			if len(row) != d || len(weights) != d {
				t.Fatalf("vertex %d: Row length %d/%d vs Degree %d", u, len(row), len(weights), d)
			}
			total += d
		}
		if total != len(edges) {
			t.Fatalf("degrees sum to %d, want %d", total, len(edges))
		}
		back := c.Edges()
		if len(back) != len(edges) {
			t.Fatalf("Edges() returned %d edges, want %d", len(back), len(edges))
		}
		// Reverse orientation must preserve the edge multiset size too.
		if r := NewReverseCSR(n, edges); r.NumEdges() != len(edges) {
			t.Fatalf("reverse CSR has %d edges, want %d", r.NumEdges(), len(edges))
		}
	})
}

package graph

import (
	"math/rand"
	"testing"
)

func benchEdges(n, m int, canonical bool) EdgeList {
	r := rand.New(rand.NewSource(1))
	el := make(EdgeList, 0, m)
	for i := 0; i < m; i++ {
		el = append(el, Edge{Src: VertexID(r.Intn(n)), Dst: VertexID(r.Intn(n)), W: Weight(r.Intn(100) + 1)})
	}
	if canonical {
		el = el.Canonicalize()
	}
	return el
}

func BenchmarkCSRBuildCanonical(b *testing.B) {
	const n = 1 << 15
	edges := benchEdges(n, 200_000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCSR(n, edges)
	}
}

func BenchmarkCSRBuildUnsorted(b *testing.B) {
	const n = 1 << 15
	edges := benchEdges(n, 200_000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCSR(n, edges)
	}
}

func BenchmarkReverseCSRBuild(b *testing.B) {
	const n = 1 << 15
	edges := benchEdges(n, 200_000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewReverseCSR(n, edges)
	}
}

func BenchmarkCSRTraversal(b *testing.B) {
	const n = 1 << 15
	edges := benchEdges(n, 200_000, true)
	c := NewCSR(n, edges)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		for u := 0; u < n; u++ {
			c.Neighbors(VertexID(u), func(v VertexID, w Weight) {
				sink += int64(v)
			})
		}
	}
	_ = sink
}

func BenchmarkSetMinus(b *testing.B) {
	a := benchEdges(1<<15, 100_000, true)
	c := benchEdges(1<<15, 100_000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minus(a, c)
	}
}

func BenchmarkSetUnion(b *testing.B) {
	a := benchEdges(1<<15, 100_000, true)
	c := benchEdges(1<<15, 100_000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Union(a, c)
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	src := benchEdges(1<<15, 100_000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		el := src.Clone()
		b.StartTimer()
		el.Canonicalize()
	}
}

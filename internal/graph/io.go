package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError is the typed rejection of the text edge-list reader: the
// 1-based input line, the offending text, and what was wrong with it.
// Tools surface it verbatim so a bad line in a million-edge file is
// findable; callers distinguish malformed input from I/O failures with
// errors.As.
type ParseError struct {
	Line   int    // 1-based line number in the input
	Input  string // the offending line, trimmed
	Reason string // what was expected
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("graph: line %d: %s in %q", e.Line, e.Reason, e.Input)
}

// WriteText writes edges as "src dst weight" lines, one per edge, preceded
// by a header line "# vertices N edges M".
func WriteText(w io.Writer, n int, edges EdgeList) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d\n", n, len(edges)); err != nil {
		return err
	}
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.Src, e.Dst, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the format produced by WriteText. Lines starting with
// '#' other than the header, and blank lines, are ignored. If no header is
// present, the vertex count is inferred as MaxVertex+1.
func ReadText(r io.Reader) (n int, edges EdgeList, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			var hn, hm int
			if _, e := fmt.Sscanf(text, "# vertices %d edges %d", &hn, &hm); e == nil && hn >= 0 {
				n = hn
				// The header count is a hint, not a promise: cap the
				// preallocation so a hostile header cannot force a huge
				// up-front allocation.
				if hm < 0 {
					hm = 0
				}
				if hm > maxPrealloc {
					hm = maxPrealloc
				}
				edges = make(EdgeList, 0, hm)
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return 0, nil, &ParseError{Line: line, Input: text, Reason: "want 'src dst [w]'"}
		}
		src, e1 := strconv.ParseUint(fields[0], 10, 32)
		dst, e2 := strconv.ParseUint(fields[1], 10, 32)
		if e1 != nil || e2 != nil {
			return 0, nil, &ParseError{Line: line, Input: text, Reason: "bad vertex id"}
		}
		w := int64(1)
		if len(fields) == 3 {
			var e3 error
			w, e3 = strconv.ParseInt(fields[2], 10, 32)
			if e3 != nil {
				return 0, nil, &ParseError{Line: line, Input: text, Reason: "bad weight"}
			}
		}
		if n >= 0 && (src >= uint64(n) || dst >= uint64(n)) {
			return 0, nil, &ParseError{Line: line, Input: text,
				Reason: fmt.Sprintf("vertex id out of range [0,%d)", n)}
		}
		edges = append(edges, Edge{Src: VertexID(src), Dst: VertexID(dst), W: Weight(w)})
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if n < 0 {
		n = edges.MaxVertex() + 1
	}
	return n, edges, nil
}

// binaryMagic guards the binary format.
const binaryMagic = uint32(0xC0330C01)

// WriteBinary writes edges in a compact little-endian binary format:
// magic, n, m, then m records of (src u32, dst u32, w i32).
func WriteBinary(w io.Writer, n int, edges EdgeList) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, uint32(n), uint32(len(edges))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	buf := make([]uint32, 0, 3*len(edges))
	for _, e := range edges {
		buf = append(buf, uint32(e.Src), uint32(e.Dst), uint32(e.W))
	}
	if err := binary.Write(bw, binary.LittleEndian, buf); err != nil {
		return err
	}
	return bw.Flush()
}

// maxPrealloc caps allocations driven by untrusted header counts; real
// data simply grows past it, while a lying header cannot exhaust memory.
const maxPrealloc = 1 << 20

// ReadBinary parses the format produced by WriteBinary. The declared edge
// count is read in bounded chunks so a corrupt or hostile header cannot
// force a giant allocation, and every vertex id is validated against the
// declared vertex count.
func ReadBinary(r io.Reader) (n int, edges EdgeList, err error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return 0, nil, err
	}
	if hdr[0] != binaryMagic {
		return 0, nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	n = int(hdr[1])
	m := int(hdr[2])
	pre := m
	if pre > maxPrealloc {
		pre = maxPrealloc
	}
	edges = make(EdgeList, 0, pre)
	const chunk = 4096
	buf := make([]uint32, 0, 3*chunk)
	for read := 0; read < m; {
		c := m - read
		if c > chunk {
			c = chunk
		}
		buf = buf[:3*c]
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return 0, nil, fmt.Errorf("graph: truncated edge records (%d of %d read): %w", read, m, err)
		}
		for i := 0; i < c; i++ {
			src, dst := buf[3*i], buf[3*i+1]
			if src >= hdr[1] || dst >= hdr[1] {
				return 0, nil, fmt.Errorf("graph: edge record %d: vertex id out of range [0,%d)", read+i, n)
			}
			edges = append(edges, Edge{
				Src: VertexID(src),
				Dst: VertexID(dst),
				W:   Weight(int32(buf[3*i+2])),
			})
		}
		read += c
	}
	return n, edges, nil
}

package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	edges := randomCanonical(r, 20, 60)
	var buf bytes.Buffer
	if err := WriteText(&buf, 20, edges); err != nil {
		t.Fatal(err)
	}
	n, back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("n=%d", n)
	}
	if !Equal(back, edges) {
		t.Fatalf("edges differ")
	}
	for i := range back {
		if back[i].W != edges[i].W {
			t.Fatalf("weight differs at %d", i)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	edges := randomCanonical(r, 40, 200)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, 40, edges); err != nil {
		t.Fatal(err)
	}
	n, back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 || !Equal(back, edges) {
		t.Fatalf("round trip failed: n=%d", n)
	}
}

func TestReadTextNoHeader(t *testing.T) {
	in := "0 1 5\n2 3\n\n# a comment\n1 2 7\n"
	n, edges, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("inferred n=%d", n)
	}
	if len(edges) != 3 {
		t.Fatalf("edges=%v", edges)
	}
	if edges[1].W != 1 {
		t.Fatalf("default weight should be 1, got %d", edges[1].W)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"0\n",                // too few fields
		"0 1 2 3\n",          // too many fields
		"x 1\n",              // bad src
		"0 y\n",              // bad dst
		"0 1 zebra\n",        // bad weight
		"0 1 999999999999\n", // weight overflow
	}
	for _, in := range cases {
		if _, _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := ReadBinary(buf); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	edges := EdgeList{{Src: 0, Dst: 1, W: 1}}
	if err := WriteBinary(&buf, 2, edges); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, _, err := ReadBinary(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("expected truncation error")
	}
}

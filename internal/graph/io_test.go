package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	edges := randomCanonical(r, 20, 60)
	var buf bytes.Buffer
	if err := WriteText(&buf, 20, edges); err != nil {
		t.Fatal(err)
	}
	n, back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("n=%d", n)
	}
	if !Equal(back, edges) {
		t.Fatalf("edges differ")
	}
	for i := range back {
		if back[i].W != edges[i].W {
			t.Fatalf("weight differs at %d", i)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	edges := randomCanonical(r, 40, 200)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, 40, edges); err != nil {
		t.Fatal(err)
	}
	n, back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 || !Equal(back, edges) {
		t.Fatalf("round trip failed: n=%d", n)
	}
}

func TestReadTextNoHeader(t *testing.T) {
	in := "0 1 5\n2 3\n\n# a comment\n1 2 7\n"
	n, edges, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("inferred n=%d", n)
	}
	if len(edges) != 3 {
		t.Fatalf("edges=%v", edges)
	}
	if edges[1].W != 1 {
		t.Fatalf("default weight should be 1, got %d", edges[1].W)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"0\n",                // too few fields
		"0 1 2 3\n",          // too many fields
		"x 1\n",              // bad src
		"0 y\n",              // bad dst
		"0 1 zebra\n",        // bad weight
		"0 1 999999999999\n", // weight overflow
	}
	for _, in := range cases {
		if _, _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

// TestReadTextParseErrorLines pins the typed-error contract: every content
// rejection is a *ParseError naming the exact 1-based line (blank and
// comment lines count), the offending text, and the reason.
func TestReadTextParseErrorLines(t *testing.T) {
	cases := []struct {
		name   string
		in     string
		line   int
		input  string
		reason string
	}{
		{"too few fields", "0 1\n7\n", 2, "7", "want 'src dst [w]'"},
		{"too many fields", "0 1 2 3\n", 1, "0 1 2 3", "want 'src dst [w]'"},
		{"bad vertex id", "# header comment\n\nx 1\n", 3, "x 1", "bad vertex id"},
		{"bad weight", "0 1\n0 1\n0 1 zebra\n", 3, "0 1 zebra", "bad weight"},
		{"out of range", "# vertices 2 edges 1\n0 5\n", 2, "0 5", "vertex id out of range [0,2)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadText(strings.NewReader(tc.in))
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a *ParseError: %v", err)
			}
			if pe.Line != tc.line || pe.Input != tc.input || pe.Reason != tc.reason {
				t.Fatalf("got {line %d, input %q, reason %q}, want {line %d, input %q, reason %q}",
					pe.Line, pe.Input, pe.Reason, tc.line, tc.input, tc.reason)
			}
			for _, frag := range []string{pe.Reason, pe.Input} {
				if !strings.Contains(err.Error(), frag) {
					t.Fatalf("message %q omits %q", err.Error(), frag)
				}
			}
		})
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	buf := bytes.NewBuffer([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, _, err := ReadBinary(buf); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	edges := EdgeList{{Src: 0, Dst: 1, W: 1}}
	if err := WriteBinary(&buf, 2, edges); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, _, err := ReadBinary(bytes.NewReader(b[:len(b)-2])); err == nil {
		t.Fatal("expected truncation error")
	}
}

package graph

import "fmt"

// Stats summarizes a graph's shape; used by the benchmark harness to print
// the Table 2 analogue for the generated stand-in graphs.
type Stats struct {
	Name      string
	Vertices  int
	Edges     int
	AvgDegree float64
	MaxOutDeg int
	MaxInDeg  int
	Isolated  int // vertices with no in- or out-edges
}

// ComputeStats scans an edge list.
func ComputeStats(name string, n int, edges EdgeList) Stats {
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	s := Stats{Name: name, Vertices: n, Edges: len(edges)}
	if n > 0 {
		s.AvgDegree = float64(len(edges)) / float64(n)
	}
	for v := 0; v < n; v++ {
		if outDeg[v] > s.MaxOutDeg {
			s.MaxOutDeg = outDeg[v]
		}
		if inDeg[v] > s.MaxInDeg {
			s.MaxInDeg = inDeg[v]
		}
		if outDeg[v] == 0 && inDeg[v] == 0 {
			s.Isolated++
		}
	}
	return s
}

// String renders the stats as one table row.
func (s Stats) String() string {
	return fmt.Sprintf("%-10s |V|=%-9d |E|=%-10d avg-deg=%-7.2f max-out=%-6d max-in=%-6d isolated=%d",
		s.Name, s.Vertices, s.Edges, s.AvgDegree, s.MaxOutDeg, s.MaxInDeg, s.Isolated)
}

package graph

import "fmt"

// Stats summarizes a graph's shape; used by the benchmark harness to print
// the Table 2 analogue for the generated stand-in graphs.
type Stats struct {
	Name      string
	Vertices  int
	Edges     int
	AvgDegree float64
	MaxOutDeg int
	MaxInDeg  int
	Isolated  int // vertices with no in- or out-edges
}

// ComputeStats scans an edge list.
func ComputeStats(name string, n int, edges EdgeList) Stats {
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	for _, e := range edges {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	s := Stats{Name: name, Vertices: n, Edges: len(edges)}
	if n > 0 {
		s.AvgDegree = float64(len(edges)) / float64(n)
	}
	for v := 0; v < n; v++ {
		if outDeg[v] > s.MaxOutDeg {
			s.MaxOutDeg = outDeg[v]
		}
		if inDeg[v] > s.MaxInDeg {
			s.MaxInDeg = inDeg[v]
		}
		if outDeg[v] == 0 && inDeg[v] == 0 {
			s.Isolated++
		}
	}
	return s
}

// String renders the stats as one table row.
func (s Stats) String() string {
	return fmt.Sprintf("%-10s |V|=%-9d |E|=%-10d avg-deg=%-7.2f max-out=%-6d max-in=%-6d isolated=%d",
		s.Name, s.Vertices, s.Edges, s.AvgDegree, s.MaxOutDeg, s.MaxInDeg, s.Isolated)
}

// DegreeCuts partitions the vertex space [0, n) into `parts` contiguous
// ranges balanced by degree: offsets is a CSR offset array (offsets[v] =
// cumulative out-degree before v, len n+1), and the returned cut points
// (len parts+1, starts[0] = 0, starts[parts] = n) split the combined
// weight degree(v)+1 evenly. The +1 vertex weight keeps zero-degree tails
// from collapsing into one range and guarantees every range is nonempty
// while parts <= n. This is the degree statistic the shard planner cuts
// vertex shards from.
func DegreeCuts(offsets []int32, parts int) []VertexID {
	n := len(offsets) - 1
	if parts < 1 {
		parts = 1
	}
	if parts > n && n > 0 {
		parts = n
	}
	starts := make([]VertexID, parts+1)
	starts[parts] = VertexID(n)
	if n <= 0 {
		return starts
	}
	// weight(v) = offsets[v] + v is strictly increasing, so each cut is a
	// binary search for the first vertex at or past its share of the total.
	total := int64(offsets[n]) + int64(n)
	for k := 1; k < parts; k++ {
		want := total * int64(k) / int64(parts)
		lo, hi := int(starts[k-1])+1, n // strictly after the previous cut
		for lo < hi {
			mid := (lo + hi) / 2
			if int64(offsets[mid])+int64(mid) >= want {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		// Leave room for the remaining cuts: parts-k cuts still need
		// strictly increasing positions below n.
		if max := n - (parts - k); lo > max {
			lo = max
		}
		starts[k] = VertexID(lo)
	}
	return starts
}

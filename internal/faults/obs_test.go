package faults

import (
	"testing"

	"commongraph/internal/obs"
)

// TestFiringsIncrementObsCounter pins the observability wiring: every
// firing (error or panic mode) increments the canonical per-point
// counter, while non-firing checks do not.
func TestFiringsIncrementObsCounter(t *testing.T) {
	c := obs.FaultFirings(string(CoreOverlayBuild))
	before := c.Value()

	disarm := Arm(&Plan{Specs: []Spec{{Point: CoreOverlayBuild, After: 1, Times: 2}}})
	defer disarm()

	if err := Check(CoreOverlayBuild); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if got := c.Value() - before; got != 0 {
		t.Fatalf("non-firing check incremented the counter by %d", got)
	}
	for hit := 2; hit <= 3; hit++ {
		if err := Check(CoreOverlayBuild); err == nil {
			t.Fatalf("hit %d did not fire", hit)
		}
	}
	if err := Check(CoreOverlayBuild); err != nil {
		t.Fatalf("Times cap ignored: %v", err)
	}
	if got := c.Value() - before; got != 2 {
		t.Fatalf("counter moved by %d, want 2 (one per firing)", got)
	}
}

// TestPanicFiringCounts asserts panic-mode injections count too.
func TestPanicFiringCounts(t *testing.T) {
	c := obs.FaultFirings(string(CoreEngineRun))
	before := c.Value()
	disarm := Arm(&Plan{Specs: []Spec{{Point: CoreEngineRun, Mode: Panic}}})
	defer disarm()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("armed panic spec did not panic")
			}
		}()
		_ = Check(CoreEngineRun)
	}()
	if got := c.Value() - before; got != 1 {
		t.Fatalf("panic firing moved the counter by %d, want 1", got)
	}
}

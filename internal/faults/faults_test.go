package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestDisarmedCheckIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("registry armed at test start")
	}
	for _, p := range Points() {
		if err := Check(p); err != nil {
			t.Fatalf("disarmed Check(%s) = %v", p, err)
		}
	}
	if Hits(CoreSubtreeWalk) != 0 {
		t.Fatal("disarmed registry counted hits")
	}
}

func TestErrorSpecFiresAndIdentifiesPoint(t *testing.T) {
	disarm := Arm(&Plan{Specs: []Spec{{Point: StoreNewVersion}}})
	defer disarm()
	err := Check(StoreNewVersion)
	if err == nil {
		t.Fatal("armed point did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error does not wrap ErrInjected: %v", err)
	}
	var f *Fault
	if !errors.As(err, &f) || f.Point != StoreNewVersion || f.Hit != 1 {
		t.Fatalf("fault metadata wrong: %+v", f)
	}
	if IsTransient(err) {
		t.Fatal("non-transient spec produced transient error")
	}
	// Unarmed points stay silent.
	if err := Check(CoreEngineRun); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestAfterAndTimes(t *testing.T) {
	disarm := Arm(&Plan{Specs: []Spec{{Point: CoreSubtreeWalk, After: 2, Times: 1}}})
	defer disarm()
	var fired []int
	for hit := 1; hit <= 5; hit++ {
		if err := Check(CoreSubtreeWalk); err != nil {
			fired = append(fired, hit)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("After=2 Times=1 fired on hits %v, want [3]", fired)
	}
	if Hits(CoreSubtreeWalk) != 5 {
		t.Fatalf("hits = %d, want 5", Hits(CoreSubtreeWalk))
	}
}

func TestPanicMode(t *testing.T) {
	disarm := Arm(&Plan{Specs: []Spec{{Point: CoreSubtreeWalk, Mode: Panic}}})
	defer disarm()
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %T, want *InjectedPanic", r)
		}
		if ip.Point != CoreSubtreeWalk || ip.Hit != 1 {
			t.Fatalf("panic metadata wrong: %+v", ip)
		}
	}()
	Check(CoreSubtreeWalk)
	t.Fatal("panic-mode check returned")
}

func TestTransientMarking(t *testing.T) {
	disarm := Arm(&Plan{Specs: []Spec{{Point: StoreNewVersion, Transient: true}}})
	defer disarm()
	err := Check(StoreNewVersion)
	if !IsTransient(err) {
		t.Fatalf("transient spec not transient: %v", err)
	}
	// Transience survives wrapping, as production error paths wrap faults.
	if !IsTransient(fmt.Errorf("snapshot: new version: %w", err)) {
		t.Fatal("transience lost through wrapping")
	}
	if IsTransient(nil) || IsTransient(errors.New("plain")) {
		t.Fatal("IsTransient misclassified non-fault errors")
	}
}

// TestChaosDeterminism pins the seeded probabilistic mode: the same seed
// fires on the same hit sequence, a different seed on a different one.
func TestChaosDeterminism(t *testing.T) {
	run := func(seed uint64) []int {
		disarm := Arm(&Plan{Seed: seed, Specs: []Spec{{Point: CoreOverlayBuild, Prob: 0.3}}})
		defer disarm()
		var fired []int
		for hit := 1; hit <= 64; hit++ {
			if err := Check(CoreOverlayBuild); err != nil {
				fired = append(fired, hit)
			}
		}
		return fired
	}
	a, b, c := run(7), run(7), run(8)
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("prob 0.3 over 64 hits fired %d times; generator looks broken", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical firings: %v", a)
	}
}

func TestObserverSeesEveryHit(t *testing.T) {
	var seen []string
	disarm := Arm(&Plan{
		Specs:    []Spec{{Point: CoreEngineRun, After: 1}},
		Observer: func(p Point, hit int) { seen = append(seen, fmt.Sprintf("%s#%d", p, hit)) },
	})
	defer disarm()
	Check(CoreEngineRun)
	Check(CoreSubtreeWalk)
	Check(CoreEngineRun)
	want := fmt.Sprint([]string{"core.engine-run#1", "core.subtree-walk#1", "core.engine-run#2"})
	if fmt.Sprint(seen) != want {
		t.Fatalf("observer saw %v", seen)
	}
}

func TestDoubleArmPanics(t *testing.T) {
	disarm := Arm(&Plan{})
	defer disarm()
	defer func() {
		if recover() == nil {
			t.Fatal("second Arm did not panic")
		}
	}()
	Arm(&Plan{})
}

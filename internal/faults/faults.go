// Package faults is the repo's deterministic fault-injection registry —
// the testing backbone of the fault-tolerance layer. Production code
// declares *named injection points* at the places a long-running
// evolving-graph service can actually fail (store writes, overlay builds,
// engine runs, schedule-subtree walks, ingest window closes, window
// maintenance); tests arm a seeded Plan that makes chosen points return
// errors or panic on chosen hits. Disarmed — the default, and the only
// state production ever sees — a Check is a single atomic load and
// injects nothing.
//
// Determinism: firing decisions depend only on the Plan (its Seed, for
// probabilistic "chaos" specs, drives a splitmix64 stream) and on the
// per-point hit counters, never on wall time or the global rand source,
// so a failing chaos seed replays exactly.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"commongraph/internal/obs"
)

// Point names one injection site. The constants below are the registry's
// vocabulary; Check at an unlisted Point still works (points are just
// names), but the matrix tests enumerate Points().
type Point string

// Named injection points, one per failure-prone boundary of the stack.
const (
	// StoreNewVersion gates snapshot.Store.NewVersion — the store write
	// that creates a snapshot from an update batch.
	StoreNewVersion Point = "store.new-version"
	// CoreEngineRun gates the from-scratch engine solve on the common
	// graph, the entry of every evaluation strategy.
	CoreEngineRun Point = "core.engine-run"
	// CoreOverlayBuild gates overlay construction — once per Direct-Hop
	// and per degraded-fallback snapshot.
	CoreOverlayBuild Point = "core.overlay-build"
	// CoreSubtreeWalk gates every schedule-edge boundary of the
	// Work-Sharing DFS (sequential and parallel) — the cooperative
	// cancellation checkpoint.
	CoreSubtreeWalk Point = "core.subtree-walk"
	// CoreMaintainAppend and CoreMaintainAdvance gate the two maintained-
	// window updates (§4.1), for atomicity/rollback tests.
	CoreMaintainAppend  Point = "core.maintain-append"
	CoreMaintainAdvance Point = "core.maintain-advance"
	// IngestWindowClose gates Batcher's batch emission — the moment a raw
	// update window compacts and hands off to the sink.
	IngestWindowClose Point = "ingest.window-close"
	// The durable-store write boundaries (internal/store), in protocol
	// order: a raw-update journal append (before the write), the fsync of
	// that write (after bytes are in the file but before they are
	// acknowledged), an overlay/base segment write, the atomic manifest
	// swap, the post-commit WAL rotation, and the background compaction
	// fold. The crash-recovery matrix kills the store at each of these
	// and reopens.
	StoreWALAppend    Point = "store.wal-append"
	StoreWALSync      Point = "store.wal-sync"
	StoreSegmentWrite Point = "store.segment-write"
	StoreManifestSwap Point = "store.manifest-swap"
	StoreWALRotate    Point = "store.wal-rotate"
	StoreCompact      Point = "store.compact"
	// The replication boundaries (internal/repl), in wire order: a frame
	// write on the shipping side, a frame read on the receiving side, the
	// follower's replay of one committed batch into its own store
	// (between receipt and AppendBatch — the batch is on the wire but not
	// yet durable), and the promotion epoch bump (before the manifest
	// swap that makes the new epoch durable). The follower crash/failover
	// matrix kills a replica at each of these and reconnects.
	ReplShipFrame   Point = "repl.ship-frame"
	ReplRecvFrame   Point = "repl.recv-frame"
	ReplReplayBatch Point = "repl.replay-batch"
	ReplPromote     Point = "repl.promote"
	// ServeCacheInsert gates the query service's result-cache insert,
	// between the evaluation (keyed by the generation observed at lookup)
	// and the cache write. The invalidation race test parks a request
	// here, commits a window behind its back, and asserts the stale-keyed
	// insert can never be served.
	ServeCacheInsert Point = "serve.cache-insert"
	// ShardMapOpen and ShardMapClose gate the mmap'd segment open path:
	// the mmap(2) of a CRC-trailed segment file (before the mapping is
	// handed to a reader) and the munmap on store Close. The crash matrix
	// kills the open at each and asserts a clean error, no leaked
	// mapping, and that a materializing reopen still serves the segment.
	ShardMapOpen  Point = "shard.map-open"
	ShardMapClose Point = "shard.map-close"
)

// Points returns every named injection point, in declaration order — the
// domain of the fault-injection matrix tests.
func Points() []Point {
	return []Point{
		StoreNewVersion, CoreEngineRun, CoreOverlayBuild, CoreSubtreeWalk,
		CoreMaintainAppend, CoreMaintainAdvance, IngestWindowClose,
		StoreWALAppend, StoreWALSync, StoreSegmentWrite, StoreManifestSwap,
		StoreWALRotate, StoreCompact,
		ReplShipFrame, ReplRecvFrame, ReplReplayBatch, ReplPromote,
		ServeCacheInsert, ShardMapOpen, ShardMapClose,
	}
}

// ErrInjected is the sentinel every injected error wraps; tests assert
// errors.Is(err, faults.ErrInjected) to distinguish injected failures from
// genuine ones.
var ErrInjected = errors.New("injected fault")

// Fault is the error an armed Error-mode spec injects. It identifies its
// Point and hit number and unwraps to ErrInjected.
type Fault struct {
	Point     Point
	Hit       int
	transient bool
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faults: injected fault at %s (hit %d)", f.Point, f.Hit)
}

// Unwrap makes errors.Is(err, ErrInjected) hold for wrapped faults.
func (f *Fault) Unwrap() error { return ErrInjected }

// Transient reports whether the fault models a retryable condition.
func (f *Fault) Transient() bool { return f.transient }

// InjectedPanic is the value a Panic-mode spec panics with; panic
// containment layers surface it inside a recovered-panic error.
type InjectedPanic struct {
	Point Point
	Hit   int
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic at %s (hit %d)", p.Point, p.Hit)
}

// IsTransient reports whether err is marked retryable — the classification
// the watcher's bounded-retry maintenance path keys on.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Mode selects what an armed spec does when it fires.
type Mode int

const (
	// Error makes Check return a *Fault.
	Error Mode = iota
	// Panic makes Check panic with an *InjectedPanic — exercising the
	// containment wrappers around spawned goroutines.
	Panic
)

// Spec arms one point. The zero value of everything but Point means
// "fire an error on every hit".
type Spec struct {
	Point Point
	Mode  Mode
	// After skips the first After hits of the point before the spec may
	// fire (deterministic mid-run failures).
	After int
	// Times caps how often the spec fires; 0 means every eligible hit.
	Times int
	// Prob, when positive, fires the spec with this probability per
	// eligible hit, drawn from the Plan's seeded stream — chaos mode.
	Prob float64
	// Transient marks injected errors retryable (IsTransient).
	Transient bool
}

// Plan is what a test arms: the specs plus the seed for probabilistic
// draws and an optional observer.
type Plan struct {
	Seed  uint64
	Specs []Spec
	// Observer, when set, sees every Check of every point while armed
	// (fired or not), with the point's 1-based hit number — tests use it
	// to cancel contexts or count schedule edges at exact moments. It is
	// called without the registry lock held.
	Observer func(p Point, hit int)
}

type registry struct {
	mu    sync.Mutex
	plan  *Plan
	hits  map[Point]int
	fired []int  // per-spec fire counts
	rng   uint64 // splitmix64 state, seeded by the plan
}

var (
	armed atomic.Bool
	reg   registry
)

// Arm installs a plan and returns its disarm function. Arming while armed
// panics: overlapping plans would make hit counts meaningless, so tests
// must disarm (usually via t.Cleanup or defer) before arming again.
func Arm(p *Plan) (disarm func()) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.plan != nil {
		panic("faults: Arm while already armed; disarm the previous plan first")
	}
	reg.plan = p
	reg.hits = make(map[Point]int)
	reg.fired = make([]int, len(p.Specs))
	reg.rng = p.Seed
	armed.Store(true)
	return func() {
		reg.mu.Lock()
		defer reg.mu.Unlock()
		armed.Store(false)
		reg.plan = nil
		reg.hits = nil
		reg.fired = nil
	}
}

// Enabled reports whether a plan is currently armed.
func Enabled() bool { return armed.Load() }

// Hits returns how many times the point has been checked under the
// current plan (0 when disarmed).
func Hits(p Point) int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return reg.hits[p]
}

// Check records a hit at point p and consults the armed plan: it returns
// an injected *Fault, panics with an *InjectedPanic, or returns nil.
// Disarmed it returns nil after one atomic load — the production fast
// path.
func Check(p Point) error {
	if !armed.Load() {
		return nil
	}
	return reg.check(p)
}

func (r *registry) check(p Point) error {
	r.mu.Lock()
	plan := r.plan
	if plan == nil {
		// Disarmed between the atomic load and acquiring the lock.
		r.mu.Unlock()
		return nil
	}
	r.hits[p]++
	hit := r.hits[p]
	var firing *Spec
	for i := range plan.Specs {
		s := &plan.Specs[i]
		if s.Point != p || hit <= s.After {
			continue
		}
		if s.Times > 0 && r.fired[i] >= s.Times {
			continue
		}
		if s.Prob > 0 && r.next() >= s.Prob {
			continue
		}
		r.fired[i]++
		firing = s
		break
	}
	observer := plan.Observer
	r.mu.Unlock()
	if observer != nil {
		observer(p, hit)
	}
	if firing == nil {
		return nil
	}
	// Every firing is observable: the canonical counter makes chaos runs
	// scrapeable (commongraph_fault_injections_total{point=...}) and the
	// process tracer — COMMONGRAPH_TRACE=log under `make chaos` — emits
	// one inspectable event per injection.
	obs.FaultFirings(string(p)).Inc()
	mode := "error"
	if firing.Mode == Panic {
		mode = "panic"
	}
	obs.Env().Event("fault.injected",
		obs.String("point", string(p)), obs.Int("hit", hit),
		obs.String("mode", mode), obs.Bool("transient", firing.Transient))
	if firing.Mode == Panic {
		panic(&InjectedPanic{Point: p, Hit: hit})
	}
	return &Fault{Point: p, Hit: hit, transient: firing.Transient}
}

// next draws a deterministic float64 in [0, 1) from the plan's splitmix64
// stream (the same generator internal/gen seeds its RNG with).
func (r *registry) next() float64 {
	r.rng += 0x9E3779B97F4A7C15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Traffic: the paper's §2 motivating scenario. A synthetic road network
// evolves over a day — congestion closes and opens road segments between
// hourly snapshots — and a dispatcher wants the shortest travel time from
// a depot to every intersection *at every hour*, plus the widest-road
// (maximum-bottleneck) route for oversized loads.
//
// The example contrasts the three evaluation strategies on the same
// 24-snapshot window and shows they return identical results.
package main

import (
	"context"
	"fmt"
	"log"

	"commongraph"
	"commongraph/internal/gen"
)

const (
	vertices = 4096   // intersections
	roads    = 40_000 // directed road segments
	hours    = 24     // snapshots: one per hour
	churn    = 400    // segments closing and opening per hour
	depot    = commongraph.VertexID(7)
)

func main() {
	// A road network is closer to uniform than to a power-law web graph.
	base := gen.Uniform(vertices, roads, 2026)
	g := commongraph.New(vertices, base)

	// One transition per hour: `churn` closures and `churn` re-openings,
	// generated as a consistent update stream.
	trs, err := gen.Stream(vertices, base, gen.StreamConfig{
		Transitions: hours - 1,
		Additions:   churn,
		Deletions:   churn,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range trs {
		if _, err := g.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			log.Fatal(err)
		}
	}

	query := commongraph.Query{Algorithm: commongraph.SSSP, Source: depot}
	fmt.Printf("road network: %d intersections, %d segments, %d hourly snapshots\n\n",
		vertices, roads, hours)

	var results []*commongraph.Result
	for _, strat := range []commongraph.Strategy{
		commongraph.KickStarter, commongraph.DirectHop, commongraph.WorkSharing,
	} {
		res, err := g.Run(context.Background(), commongraph.Request{
			Query:    query,
			Window:   commongraph.Window{From: 0, To: hours - 1},
			Strategy: strat,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s total %-12v adds %-7d dels %-6d (inc-del %v, mutation/overlay %v)\n",
			strat, res.Timings.Total, res.AdditionsProcessed, res.DeletionsProcessed,
			res.Timings.IncrementalDelete, res.Timings.Mutation)
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		for h := range results[0].Snapshots {
			if results[0].Snapshots[h].Checksum != results[i].Snapshots[h].Checksum {
				log.Fatalf("strategy %v disagrees at hour %d", results[i].Strategy, h)
			}
		}
	}
	fmt.Println("\nall strategies agree at every hour ✓")

	// Track how reachability from the depot moves across the day.
	res, err := g.Run(context.Background(), commongraph.Request{
		Query:    query,
		Window:   commongraph.Window{From: 0, To: hours - 1},
		Strategy: commongraph.WorkSharing,
		Options:  commongraph.Options{KeepValues: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhour  reachable  dist(depot -> 4095)")
	for h, snap := range res.Snapshots {
		d := "unreachable"
		if v := snap.Values[vertices-1]; v != commongraph.Infinity {
			d = fmt.Sprintf("%d", v)
		}
		fmt.Printf("%4d  %9d  %s\n", h, snap.Reached, d)
	}

	// Oversized loads: the widest-path query on the final rush-hour window.
	wide, err := g.Run(context.Background(), commongraph.Request{
		Query:    commongraph.Query{Algorithm: commongraph.SSWP, Source: depot},
		Window:   commongraph.Window{From: hours - 4, To: hours - 1},
		Strategy: commongraph.DirectHop,
		Options:  commongraph.Options{KeepValues: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwidest route capacity from depot to intersection 100, last four hours:")
	for _, snap := range wide.Snapshots {
		fmt.Printf("  hour %d: %d\n", snap.Index, snap.Values[100])
	}
}

// Schedules: the paper's worked example (§3, Figures 4–7), end to end.
// Three snapshots G_i, G_i+1, G_i+2 are related by the exact batches the
// paper lists; the program prints the common graph, the six Triangular
// Grid labels of §3.2, the Direct-Hop cost, both candidate trees' costs,
// and the compressed minimum-cost schedule Algorithm 1 finds.
package main

import (
	"context"
	"fmt"
	"log"

	"commongraph"
	"commongraph/internal/core"
)

// ed maps the paper's edge label e_k to a concrete edge.
func ed(k int) commongraph.Edge {
	return commongraph.Edge{Src: commongraph.VertexID(k), Dst: commongraph.VertexID(100 + k), W: 1}
}

func eds(ks ...int) []commongraph.Edge {
	out := make([]commongraph.Edge, 0, len(ks))
	for _, k := range ks {
		out = append(out, ed(k))
	}
	return out
}

func names(el []commongraph.Edge) string {
	s := "{"
	for i, e := range el {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("e%d", e.Src)
	}
	return s + "}"
}

func main() {
	// G_i: the edges the window will delete, plus common filler e1, e2.
	g := commongraph.New(200, eds(1, 2, 4, 7, 9, 10, 11, 16, 23, 26, 29))

	// Δi+ = {e3, e12, e15}; Δi− = {e9, e11, e16, e23, e29}
	if _, err := g.ApplyUpdates(eds(3, 12, 15), eds(9, 11, 16, 23, 29)); err != nil {
		log.Fatal(err)
	}
	// Δi+1+ = {e9, e11, e14, e24, e29}; Δi+1− = {e3, e4, e7, e10, e26}
	if _, err := g.ApplyUpdates(eds(9, 11, 14, 24, 29), eds(3, 4, 7, 10, 26)); err != nil {
		log.Fatal(err)
	}

	w := core.Window{Store: g.Store(), From: 0, To: 2}
	rep, err := core.BuildRep(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("common graph G_c = %s\n\n", names(rep.Common))
	for k := 0; k < 3; k++ {
		fmt.Printf("Δc%d (G_c -> snapshot %d) = %-2d additions: %s\n",
			k+1, k, rep.Deltas[k].Len(), names(rep.Deltas[k].Edges()))
	}
	fmt.Printf("\ndirect-hop total: %d additions (the paper's Figure 4 listing)\n\n", rep.TotalDeltaEdges())

	tg, err := core.BuildTG(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the six Triangular Grid labels of §3.2:")
	gridEdges := []struct {
		name string
		e    core.GridEdge
	}{
		{"ICG1 -> G_i   ", core.GridEdge{I: 0, J: 1, Left: true}},
		{"ICG1 -> G_i+1 ", core.GridEdge{I: 0, J: 1, Left: false}},
		{"ICG2 -> G_i+1 ", core.GridEdge{I: 1, J: 2, Left: true}},
		{"ICG2 -> G_i+2 ", core.GridEdge{I: 1, J: 2, Left: false}},
		{"G_c  -> ICG1  ", core.GridEdge{I: 0, J: 2, Left: true}},
		{"G_c  -> ICG2  ", core.GridEdge{I: 0, J: 2, Left: false}},
	}
	var ge []core.GridEdge
	for _, x := range gridEdges {
		ge = append(ge, x.e)
	}
	labels := tg.Labels(ge)
	for _, x := range gridEdges {
		fmt.Printf("  %s = %s\n", x.name, names(labels[x.e]))
	}

	// The two candidate trees of Figure 6, costed by hand from the labels.
	cost := func(es ...core.GridEdge) int64 {
		var c int64
		for _, e := range es {
			c += tg.LabelSize(e)
		}
		return c
	}
	tree1 := cost(
		core.GridEdge{I: 0, J: 2, Left: true},  // G_c -> ICG1
		core.GridEdge{I: 0, J: 1, Left: true},  // ICG1 -> G_i
		core.GridEdge{I: 0, J: 1, Left: false}, // ICG1 -> G_i+1
		core.GridEdge{I: 0, J: 2, Left: false}, // G_c -> ICG2
		core.GridEdge{I: 1, J: 2, Left: false}, // ICG2 -> G_i+2
	)
	tree2 := cost(
		core.GridEdge{I: 0, J: 2, Left: false},
		core.GridEdge{I: 1, J: 2, Left: true},
		core.GridEdge{I: 1, J: 2, Left: false},
		core.GridEdge{I: 0, J: 2, Left: true},
		core.GridEdge{I: 0, J: 1, Left: true},
	)
	fmt.Printf("\nTree1 cost = %d additions, Tree2 cost = %d additions (Figure 6)\n", tree1, tree2)

	tree := core.SteinerGreedy(tg)
	sched, err := core.NewSchedule(tg, tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAlgorithm 1 (greedy Steiner + compression) finds cost %d:\n%s", sched.Cost, sched)

	// Execute the winning schedule and confirm against independent
	// per-snapshot evaluation.
	res, err := g.Run(context.Background(), commongraph.Request{
		Query:    commongraph.Query{Algorithm: commongraph.BFS, Source: 1},
		Window:   commongraph.Window{From: 0, To: 2},
		Strategy: commongraph.WorkSharing,
	})
	if err != nil {
		log.Fatal(err)
	}
	ks, err := g.Run(context.Background(), commongraph.Request{
		Query:    commongraph.Query{Algorithm: commongraph.BFS, Source: 1},
		Window:   commongraph.Window{From: 0, To: 2},
		Strategy: commongraph.KickStarter,
	})
	if err != nil {
		log.Fatal(err)
	}
	for k := range res.Snapshots {
		if res.Snapshots[k].Checksum != ks.Snapshots[k].Checksum {
			log.Fatalf("schedule produced wrong results at snapshot %d", k)
		}
	}
	fmt.Println("executed the schedule; results match the streaming baseline on every snapshot ✓")
}

// Quickstart: build a small evolving graph by hand, evaluate a
// shortest-path query over every snapshot with the Work-Sharing strategy,
// and print the per-snapshot results.
package main

import (
	"context"
	"fmt"
	"log"

	"commongraph"
)

func main() {
	// A 6-vertex graph; snapshot 0.
	g := commongraph.New(6, []commongraph.Edge{
		{Src: 0, Dst: 1, W: 4},
		{Src: 0, Dst: 2, W: 1},
		{Src: 2, Dst: 1, W: 2},
		{Src: 1, Dst: 3, W: 5},
		{Src: 2, Dst: 3, W: 8},
		{Src: 3, Dst: 4, W: 1},
	})

	// Snapshot 1: a shortcut appears, an old road closes.
	if _, err := g.ApplyUpdates(
		[]commongraph.Edge{{Src: 2, Dst: 4, W: 2}},
		[]commongraph.Edge{{Src: 1, Dst: 3, W: 5}},
	); err != nil {
		log.Fatal(err)
	}

	// Snapshot 2: vertex 5 gets connected; the closed road reopens.
	if _, err := g.ApplyUpdates(
		[]commongraph.Edge{{Src: 4, Dst: 5, W: 3}, {Src: 1, Dst: 3, W: 5}},
		nil,
	); err != nil {
		log.Fatal(err)
	}

	// How did the distance-from-0 landscape evolve? One call evaluates the
	// query on all three snapshots, sharing the work they have in common.
	res, err := g.Run(context.Background(), commongraph.Request{
		Query:    commongraph.Query{Algorithm: commongraph.SSSP, Source: 0},
		Window:   commongraph.Window{From: 0, To: g.NumSnapshots() - 1},
		Strategy: commongraph.WorkSharing,
		Options:  commongraph.Options{KeepValues: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("strategy: %s, total time %v\n\n", res.Strategy, res.Timings.Total)
	for _, snap := range res.Snapshots {
		fmt.Printf("snapshot %d (reached %d vertices):\n", snap.Index, snap.Reached)
		for v, val := range snap.Values {
			if val == commongraph.Infinity {
				fmt.Printf("  dist(0 -> %d) = unreachable\n", v)
			} else {
				fmt.Printf("  dist(0 -> %d) = %d\n", v, val)
			}
		}
	}

	// The schedule comparison of §3: how many additions does each
	// evaluation schedule stream?
	plan, err := g.Plan(0, g.NumSnapshots()-1, commongraph.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommon graph: %d edges; direct-hop streams %d additions, work-sharing %d\n",
		plan.CommonEdges, plan.DirectHopAdditions, plan.WorkSharingAdditions)
}

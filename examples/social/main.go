// Social: evolving-graph analytics on a power-law social network. A
// growing R-MAT graph stands in for a follow graph; an analyst tracks,
// across 30 daily snapshots, (a) how many accounts a seed account can
// reach (BFS) and (b) the most-probable influence path to a target
// account (Viterbi over transition probabilities).
//
// The update stream skews toward additions (3:1) — networks mostly grow —
// and the example shows the Direct-Hop advantage persists (Figure 10's
// ratio sensitivity, from the addition-heavy side).
package main

import (
	"context"
	"fmt"
	"log"

	"commongraph"
	"commongraph/internal/gen"
)

const (
	scale = 13 // 8192 accounts
	edges = 120_000
	days  = 30
	adds  = 900
	dels  = 300
	seed  = commongraph.VertexID(42)
)

func main() {
	n, base := gen.RMAT(gen.DefaultRMAT(scale, edges, 99))
	g := commongraph.New(n, base)
	trs, err := gen.Stream(n, base, gen.StreamConfig{
		Transitions: days - 1, Additions: adds, Deletions: dels, Seed: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range trs {
		if _, err := g.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("follow graph: %d accounts, %d edges, %d daily snapshots (+%d/-%d per day)\n\n",
		n, edges, days, adds, dels)

	// Reach of the seed account, day by day.
	reach, err := g.Run(context.Background(), commongraph.Request{
		Query:    commongraph.Query{Algorithm: commongraph.BFS, Source: seed},
		Window:   commongraph.Window{From: 0, To: days - 1},
		Strategy: commongraph.WorkSharing,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("day  reachable accounts")
	for d, snap := range reach.Snapshots {
		bar := ""
		for i := 0; i < snap.Reached/400; i++ {
			bar += "#"
		}
		fmt.Printf("%3d  %6d %s\n", d, snap.Reached, bar)
	}

	// Most-probable influence path to one target account across the month.
	infl, err := g.Run(context.Background(), commongraph.Request{
		Query:    commongraph.Query{Algorithm: commongraph.Viterbi, Source: seed},
		Window:   commongraph.Window{From: 0, To: days - 1},
		Strategy: commongraph.DirectHop,
		Options:  commongraph.Options{KeepValues: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	target := commongraph.VertexID(4000)
	fmt.Printf("\ninfluence probability %d -> %d over the month:\n", seed, target)
	for d, snap := range infl.Snapshots {
		fmt.Printf("  day %2d: %.6f\n", d, commongraph.ViterbiProbability(snap.Values[target]))
	}

	// Strategy comparison on this addition-heavy stream.
	fmt.Println("\nstrategy comparison (BFS over all 30 snapshots):")
	for _, strat := range []commongraph.Strategy{
		commongraph.KickStarter, commongraph.DirectHop, commongraph.DirectHopParallel, commongraph.WorkSharing,
	} {
		res, err := g.Run(context.Background(), commongraph.Request{
			Query:    commongraph.Query{Algorithm: commongraph.BFS, Source: seed},
			Window:   commongraph.Window{From: 0, To: days - 1},
			Strategy: strat,
		})
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if res.MaxHopTime > 0 {
			extra = fmt.Sprintf("  (longest independent hop %v)", res.MaxHopTime)
		}
		fmt.Printf("  %-22s %v%s\n", strat, res.Timings.Total, extra)
	}
}

// Monitor: a long-running evolving-graph service built on the Watcher
// API. A content-delivery overlay network keeps the last 12 snapshots of
// its topology under observation; every time a new snapshot arrives the
// window slides forward with incremental common-graph maintenance (§4.1)
// and two standing queries re-evaluate:
//
//   - SSWP from the origin server: the bottleneck bandwidth to every edge
//     node (can we still stream HD to everyone?);
//   - HopLimit(3): which caches are within 3 hops of the origin (the
//     low-latency tier) — one of this implementation's extension
//     algorithms beyond the paper's Table 3.
package main

import (
	"fmt"
	"log"

	"commongraph"
	"commongraph/internal/algo"
	"commongraph/internal/gen"
)

const (
	nodes    = 2048
	links    = 24_000
	window   = 12
	arrivals = 10 // new snapshots arriving after the initial window
	churn    = 250
	origin   = commongraph.VertexID(0)
)

func main() {
	base := gen.Uniform(nodes, links, 4242)
	g := commongraph.New(nodes, base)
	trs, err := gen.Stream(nodes, base, gen.StreamConfig{
		Transitions: window - 1 + arrivals,
		Additions:   churn,
		Deletions:   churn,
		Seed:        4243,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Pre-populate the initial window.
	for _, tr := range trs[:window-1] {
		if _, err := g.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			log.Fatal(err)
		}
	}
	w, err := g.Watch(0, window-1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %d nodes, %d links; watching a %d-snapshot window\n\n", nodes, links, window)
	fmt.Println("arrival  window     common   min-bandwidth(node 2047)  low-latency tier")

	report := func(arrival int) {
		bw, err := w.Evaluate(commongraph.Query{Algorithm: commongraph.SSWP, Source: origin},
			commongraph.WorkSharing, commongraph.Options{KeepValues: true})
		if err != nil {
			log.Fatal(err)
		}
		tier, err := w.Evaluate(commongraph.Query{Algorithm: algo.HopLimit{K: 3}, Source: origin},
			commongraph.DirectHop, commongraph.Options{})
		if err != nil {
			log.Fatal(err)
		}
		from, to := w.Window()
		// The newest snapshot's numbers.
		latestBW := bw.Snapshots[len(bw.Snapshots)-1].Values[nodes-1]
		latestTier := tier.Snapshots[len(tier.Snapshots)-1].Reached
		fmt.Printf("%7d  [%2d,%2d]  %8d  %24d  %16d\n",
			arrival, from, to, w.CommonEdges(), latestBW, latestTier)
	}
	report(0)

	// New snapshots arrive; the window slides and both queries re-run.
	for i, tr := range trs[window-1:] {
		if _, err := g.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			log.Fatal(err)
		}
		if err := w.Slide(); err != nil {
			log.Fatal(err)
		}
		report(i + 1)
	}
	fmt.Println("\nthe common graph shrinks as churn accumulates inside the window,")
	fmt.Println("and recovers as old snapshots slide out — all without re-building.")
}

// Monitor: a long-running evolving-graph service built on the Watcher
// API, observed from the outside through its own metrics endpoint. A
// content-delivery overlay network keeps the last 12 snapshots of its
// topology under observation; every time a new snapshot arrives the
// window slides forward with incremental common-graph maintenance (§4.1)
// and two standing queries re-evaluate:
//
//   - SSWP from the origin server: the bottleneck bandwidth to every edge
//     node (can we still stream HD to everyone?);
//   - HopLimit(3): which caches are within 3 hops of the origin (the
//     low-latency tier) — one of this implementation's extension
//     algorithms beyond the paper's Table 3.
//
// The twist over a plain evaluation loop: the watcher serves its metric
// registry over HTTP (Watcher.ServeMetrics), and this program reports by
// scraping http://…/metrics (Prometheus text format) and /window (JSON)
// exactly the way an external dashboard would — nothing in the table
// below comes from in-process state except the query answers themselves.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"

	"commongraph"
	"commongraph/internal/algo"
	"commongraph/internal/gen"
)

const (
	nodes    = 2048
	links    = 24_000
	window   = 12
	arrivals = 10 // new snapshots arriving after the initial window
	churn    = 250
	origin   = commongraph.VertexID(0)
)

func main() {
	base := gen.Uniform(nodes, links, 4242)
	g := commongraph.New(nodes, base)
	trs, err := gen.Stream(nodes, base, gen.StreamConfig{
		Transitions: window - 1 + arrivals,
		Additions:   churn,
		Deletions:   churn,
		Seed:        4243,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Pre-populate the initial window.
	for _, tr := range trs[:window-1] {
		if _, err := g.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			log.Fatal(err)
		}
	}
	w, err := g.Watch(0, window-1)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := w.ServeMetrics("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ms.Close()
	fmt.Printf("overlay: %d nodes, %d links; watching a %d-snapshot window\n", nodes, links, window)
	fmt.Printf("metrics endpoint: %s (scraped for every row below)\n\n", ms.URL())
	fmt.Println("arrival  window     common   min-bw(node 2047)  tier  queries  slides")

	report := func(arrival int) {
		bw, err := w.Run(context.Background(), commongraph.Request{
			Query:    commongraph.Query{Algorithm: commongraph.SSWP, Source: origin},
			Strategy: commongraph.WorkSharing,
			Options:  commongraph.Options{KeepValues: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		tier, err := w.Run(context.Background(), commongraph.Request{
			Query:    commongraph.Query{Algorithm: algo.HopLimit{K: 3}, Source: origin},
			Strategy: commongraph.DirectHop,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Everything else in the row comes off the wire.
		win := pollWindow(ms.Addr())
		samples := scrape(ms.URL())
		queries := sum(samples, "commongraph_queries_total")
		slides := sum(samples, `commongraph_maintenance_ops_total{kind="slide"}`)
		latestBW := bw.Snapshots[len(bw.Snapshots)-1].Values[nodes-1]
		latestTier := tier.Snapshots[len(tier.Snapshots)-1].Reached
		fmt.Printf("%7d  [%2d,%2d]  %8d  %17d  %4d  %7.0f  %6.0f\n",
			arrival, win.From, win.To, win.CommonEdges, latestBW, latestTier, queries, slides)
	}
	report(0)

	// New snapshots arrive; the window slides and both queries re-run.
	for i, tr := range trs[window-1:] {
		if _, err := g.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			log.Fatal(err)
		}
		if err := w.Slide(); err != nil {
			log.Fatal(err)
		}
		report(i + 1)
	}
	fmt.Println("\nthe common graph shrinks as churn accumulates inside the window,")
	fmt.Println("and recovers as old snapshots slide out — all without re-building.")
	fmt.Println("the queries and slides columns are cumulative counters scraped from")
	fmt.Println("/metrics; point a real Prometheus at the same endpoint in production.")

	// COMMONGRAPH_TRACE=<path> captures a Chrome trace of the whole run.
	if err := commongraph.WriteEnvTrace(); err != nil {
		log.Fatal(err)
	}
}

// windowStatus mirrors the JSON the /window endpoint serves.
type windowStatus struct {
	From        int `json:"from"`
	To          int `json:"to"`
	Width       int `json:"width"`
	CommonEdges int `json:"common_edges"`
}

func pollWindow(addr string) windowStatus {
	resp, err := http.Get("http://" + addr + "/window")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var ws windowStatus
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		log.Fatal(err)
	}
	return ws
}

// scrape fetches the Prometheus exposition and returns every sample line
// as series → value ("name{labels}" → float).
func scrape(url string) map[string]float64 {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		samples[line[:i]] = v
	}
	return samples
}

// sum adds every series whose name (or exact series string) matches:
// "commongraph_queries_total" sums over all strategy labels.
func sum(samples map[string]float64, series string) float64 {
	var total float64
	for s, v := range samples {
		if s == series || strings.HasPrefix(s, series+"{") {
			total += v
		}
	}
	return total
}

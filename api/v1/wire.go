// Package apiv1 is the versioned wire schema of the cgserve query
// service. It is deliberately dependency-free: every field is a plain
// JSON-friendly type, strategies and algorithms travel as their stable
// slug strings (the commongraph ParseStrategy / AlgorithmByName
// vocabularies), and 64-bit checksums travel as hex strings so non-Go
// clients never lose precision to float64 JSON numbers. The serve layer
// converts to and from the rich in-process types at the boundary; v1
// messages never change incompatibly — breaking changes get a v2.
package apiv1

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// Window selects the inclusive snapshot range [From, To] of the served
// evolving graph.
type Window struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// RunRequest asks the service to evaluate one query.
type RunRequest struct {
	// Algorithm names the vertex program: "BFS", "SSSP", "SSWP", "SSNP"
	// or "Viterbi" (case-insensitive).
	Algorithm string `json:"algorithm"`
	// Source is the query's source vertex.
	Source int `json:"source"`
	// Window bounds the evaluated snapshots. Omitted (nil), the service
	// evaluates its maintained window — the common case against a live
	// watcher or follower.
	Window *Window `json:"window,omitempty"`
	// Strategy is a ParseStrategy slug ("direct-hop",
	// "work-sharing-parallel", "dhp", ...). Omitted, the service default
	// applies. KickStarter and Independent are valid here only when the
	// service fronts a whole evolving graph rather than a maintained
	// window.
	Strategy string `json:"strategy,omitempty"`
	// KeepValues returns full per-vertex values for every snapshot —
	// large; off by default.
	KeepValues bool `json:"keep_values,omitempty"`
	// OptimalSchedule selects the exact interval-DP Steiner solver for
	// the Work-Sharing strategies.
	OptimalSchedule bool `json:"optimal_schedule,omitempty"`
	// Trace, when set, is a 16-hex-digit trace ID the evaluation joins,
	// linking the server-side spans to the caller's trace.
	Trace string `json:"trace,omitempty"`
}

// Checksum is a 64-bit value fingerprint that marshals as a fixed-width
// hex string ("00ab54a98ceb1f0a"), never as a JSON number.
type Checksum uint64

// MarshalJSON renders the checksum as a quoted fixed-width hex string.
func (c Checksum) MarshalJSON() ([]byte, error) {
	return []byte(`"` + fmt.Sprintf("%016x", uint64(c)) + `"`), nil
}

// UnmarshalJSON accepts the quoted hex form (leading zeros optional).
func (c *Checksum) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("apiv1: checksum must be a hex string: %w", err)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("apiv1: bad checksum %q: %w", s, err)
	}
	*c = Checksum(v)
	return nil
}

// Snapshot is the query outcome at one snapshot.
type Snapshot struct {
	// Index is the absolute snapshot index in the evolving graph.
	Index int `json:"index"`
	// Reached counts vertices with a non-identity value.
	Reached int `json:"reached"`
	// Checksum fingerprints the full value array.
	Checksum Checksum `json:"checksum"`
	// Values holds per-vertex results when the request set keep_values.
	Values []int64 `json:"values,omitempty"`
}

// RunResult is the service's answer to a RunRequest.
type RunResult struct {
	// Strategy is the slug of the strategy that actually ran.
	Strategy string `json:"strategy"`
	// Window is the evaluated snapshot range (the maintained window when
	// the request omitted one).
	Window Window `json:"window"`
	// Generation is the serving window's commit generation the result
	// was computed at; it is part of the service's cache key, so two
	// equal generations mean byte-identical results.
	Generation uint64 `json:"generation"`
	// Cached reports a result-cache hit (no evaluation ran).
	Cached bool `json:"cached,omitempty"`
	// Stale marks a follower-served result beyond its staleness budget.
	Stale bool `json:"stale,omitempty"`
	// Degraded marks that a schedule subtree failed and its snapshots
	// were recomputed via the fallback path (values remain exact).
	Degraded bool `json:"degraded,omitempty"`
	// Trace is the evaluation's trace ID (16 hex digits) for
	// /debug/trace?id= lookups.
	Trace string `json:"trace,omitempty"`
	// Snapshots holds one entry per evaluated snapshot, in window order.
	Snapshots []Snapshot `json:"snapshots"`
}

// Error codes of the v1 protocol, stable across releases.
const (
	// CodeBadRequest: the request failed validation (unknown algorithm,
	// bad window, unparseable strategy).
	CodeBadRequest = "bad_request"
	// CodeQuotaExhausted: the tenant's token bucket is empty (HTTP 429).
	CodeQuotaExhausted = "quota_exhausted"
	// CodeQueueFull: the admission queue is at capacity (HTTP 429).
	CodeQueueFull = "queue_full"
	// CodeStale: the follower is beyond its staleness budget.
	CodeStale = "stale"
	// CodeCanceled: the caller went away before the evaluation finished.
	CodeCanceled = "canceled"
	// CodeInternal: the evaluation failed.
	CodeInternal = "internal"
)

// Error is the wire form of every non-2xx response body.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
	// RetryAfterMillis, when positive, is the backoff the service
	// suggests (it mirrors the Retry-After header on 429s).
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
	// Trace is the failed request's trace ID, when one was assigned.
	Trace string `json:"trace,omitempty"`
	// Status is the HTTP status the error travelled with. It is not
	// serialized — the transport carries it — but Dial's client fills it
	// in for callers that branch on classes of failure.
	Status int `json:"-"`
}

// Error renders the wire error as a Go error string.
func (e *Error) Error() string {
	if e.RetryAfterMillis > 0 {
		return fmt.Sprintf("apiv1: %s: %s (retry after %dms)", e.Code, e.Message, e.RetryAfterMillis)
	}
	return fmt.Sprintf("apiv1: %s: %s", e.Code, e.Message)
}

package apiv1

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// goldenRequest / goldenResult / goldenError are the in-memory twins of
// the testdata fixtures. Changing either side of a pair is a wire-format
// break — that is exactly what these tests exist to catch.
func goldenRequest() *RunRequest {
	return &RunRequest{
		Algorithm:       "SSSP",
		Source:          42,
		Window:          &Window{From: 3, To: 9},
		Strategy:        "work-sharing-parallel",
		KeepValues:      true,
		OptimalSchedule: true,
		Trace:           "00c0ffee00c0ffee",
	}
}

func goldenResult() *RunResult {
	return &RunResult{
		Strategy:   "work-sharing-parallel",
		Window:     Window{From: 3, To: 9},
		Generation: 17,
		Cached:     true,
		Stale:      true,
		Degraded:   true,
		Trace:      "00c0ffee00c0ffee",
		Snapshots: []Snapshot{
			{Index: 3, Reached: 812, Checksum: 0x00ab54a98ceb1f0a, Values: []int64{0, 7, 2147483647}},
			{Index: 4, Reached: 813, Checksum: 0xffffffffffffffff},
		},
	}
}

func goldenError() *Error {
	return &Error{
		Code:             CodeQueueFull,
		Message:          "admission queue at capacity (64 queued)",
		RetryAfterMillis: 250,
		Trace:            "00c0ffee00c0ffee",
	}
}

// checkGolden asserts both directions against the golden file: the Go
// value encodes to exactly the golden bytes, and the golden bytes decode
// to exactly the Go value.
func checkGolden[T any](t *testing.T, file string, want T) {
	t.Helper()
	golden, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	enc = append(enc, '\n')
	if !bytes.Equal(enc, golden) {
		t.Errorf("%s: encode drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", file, enc, golden)
	}
	var got T
	if err := json.Unmarshal(golden, &got); err != nil {
		t.Fatalf("%s: decode: %v", file, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: decode drifted from golden value\ngot:  %+v\nwant: %+v", file, got, want)
	}
}

func TestGoldenRunRequest(t *testing.T) { checkGolden(t, "run_request.json", goldenRequest()) }
func TestGoldenRunResult(t *testing.T)  { checkGolden(t, "run_result.json", goldenResult()) }
func TestGoldenError(t *testing.T)      { checkGolden(t, "error.json", goldenError()) }

// TestChecksumRoundTrip: the hex-string encoding survives extreme values
// and rejects non-hex garbage.
func TestChecksumRoundTrip(t *testing.T) {
	for _, v := range []Checksum{0, 1, 0xdeadbeef, ^Checksum(0)} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var got Checksum
		if err := json.Unmarshal(b, &got); err != nil || got != v {
			t.Fatalf("round-trip %x -> %s -> %x (%v)", uint64(v), b, uint64(got), err)
		}
	}
	var c Checksum
	if err := json.Unmarshal([]byte(`"not-hex"`), &c); err == nil {
		t.Fatal("want error for non-hex checksum")
	}
	if err := json.Unmarshal([]byte(`123`), &c); err == nil {
		t.Fatal("want error for numeric checksum")
	}
}

// TestOmittedFieldsStayOmitted: a minimal request encodes without the
// optional fields — wire compatibility includes what we do NOT send.
func TestOmittedFieldsStayOmitted(t *testing.T) {
	b, err := json.Marshal(&RunRequest{Algorithm: "BFS", Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"algorithm":"BFS","source":0}` {
		t.Fatalf("minimal request encodes extra fields: %s", b)
	}
}

// TestClientRun exercises Dial + Run against a stub server: tenant
// header, request round-trip, and error decoding with Retry-After.
func TestClientRun(t *testing.T) {
	var gotTenant string
	var gotReq RunRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != RunPath || r.Method != http.MethodPost {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		gotTenant = r.Header.Get(TenantHeader)
		if err := json.NewDecoder(r.Body).Decode(&gotReq); err != nil {
			t.Errorf("decode: %v", err)
		}
		json.NewEncoder(w).Encode(goldenResult())
	}))
	defer srv.Close()

	c, err := Dial(srv.URL, WithTenant("team-a"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(t.Context(), goldenRequest())
	if err != nil {
		t.Fatal(err)
	}
	if gotTenant != "team-a" {
		t.Fatalf("tenant header = %q", gotTenant)
	}
	if !reflect.DeepEqual(&gotReq, goldenRequest()) {
		t.Fatalf("server saw %+v", gotReq)
	}
	if !reflect.DeepEqual(res, goldenResult()) {
		t.Fatalf("client decoded %+v", res)
	}
}

// TestClientRunError: a 429 with a v1 error body surfaces as *Error with
// the status and retry hint attached.
func TestClientRunError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(&Error{Code: CodeQuotaExhausted, Message: "tenant bucket empty"})
	}))
	defer srv.Close()
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(t.Context(), &RunRequest{Algorithm: "BFS"})
	var werr *Error
	if !errors.As(err, &werr) {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if werr.Code != CodeQuotaExhausted || werr.Status != http.StatusTooManyRequests {
		t.Fatalf("error = %+v", werr)
	}
	if werr.RetryAfterMillis != 2000 {
		t.Fatalf("Retry-After header not mapped: %+v", werr)
	}
}

// TestClientRunNonJSONError: a proxy-style HTML error page still comes
// back as a usable *Error rather than a decode failure.
func TestClientRunNonJSONError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "<html>bad gateway</html>", http.StatusBadGateway)
	}))
	defer srv.Close()
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(t.Context(), &RunRequest{Algorithm: "BFS"})
	var werr *Error
	if !errors.As(err, &werr) {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if werr.Code != CodeInternal || werr.Status != http.StatusBadGateway {
		t.Fatalf("error = %+v", werr)
	}
}

// TestDialRejectsGarbage pins Dial's URL validation.
func TestDialRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "ftp://x", "not a url", "//missing-scheme"} {
		if _, err := Dial(bad); err == nil {
			t.Errorf("Dial(%q) should fail", bad)
		}
	}
}

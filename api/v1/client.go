package apiv1

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// RunPath is the v1 query endpoint every server mounts.
const RunPath = "/v1/run"

// TenantHeader carries the caller's tenant identity; the service keys
// its token-bucket quotas on it. Empty means the default tenant.
const TenantHeader = "X-CG-Tenant"

// Client is a thin v1 wire client: it speaks only the apiv1 JSON schema
// and never imports the in-process evaluation types.
type Client struct {
	base   string
	tenant string
	hc     *http.Client
}

// Option customizes Dial.
type Option func(*Client)

// WithTenant sets the X-CG-Tenant header on every request.
func WithTenant(tenant string) Option { return func(c *Client) { c.tenant = tenant } }

// WithHTTPClient replaces the underlying HTTP client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// Dial validates the server's base URL ("http://host:port") and returns
// a client for it. No connection is made until the first Run.
func Dial(base string, opts ...Option) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("apiv1: bad base URL %q: %w", base, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("apiv1: base URL %q must be http or https", base)
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{Timeout: 60 * time.Second}}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Run posts the request to /v1/run and decodes the result. Non-2xx
// responses decode to *Error (errors.As-able), with Status and any
// Retry-After header mapped onto it.
func (c *Client) Run(ctx context.Context, req *RunRequest) (*RunResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("apiv1: encode request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+RunPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.tenant != "" {
		hreq.Header.Set(TenantHeader, c.tenant)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("apiv1: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		werr := &Error{Status: resp.StatusCode}
		if jerr := json.Unmarshal(raw, werr); jerr != nil || werr.Code == "" {
			// Not a v1 error body (a proxy's HTML, a panic page): surface
			// the transport truth instead of an empty decode.
			werr.Code = CodeInternal
			werr.Message = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, truncate(string(raw), 200))
		}
		if werr.RetryAfterMillis == 0 {
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, perr := strconv.ParseFloat(s, 64); perr == nil {
					werr.RetryAfterMillis = int64(secs * 1000)
				}
			}
		}
		return nil, werr
	}
	var res RunResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("apiv1: decode result: %w", err)
	}
	return &res, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

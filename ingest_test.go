package commongraph

import "testing"

func TestIngestorCreatesSnapshots(t *testing.T) {
	g := New(6, []Edge{{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 1}})
	in, err := g.Ingestor(3)
	if err != nil {
		t.Fatal(err)
	}
	// Window 1: add two edges, delete one — a full window of 3.
	if err := in.Add(Edge{Src: 2, Dst: 3, W: 1}); err != nil {
		t.Fatal(err)
	}
	if err := in.Add(Edge{Src: 3, Dst: 4, W: 1}); err != nil {
		t.Fatal(err)
	}
	if err := in.Delete(Edge{Src: 0, Dst: 1, W: 1}); err != nil {
		t.Fatal(err)
	}
	if g.NumSnapshots() != 2 {
		t.Fatalf("snapshots=%d after window 1", g.NumSnapshots())
	}
	snap, _ := g.Snapshot(1)
	if len(snap) != 3 {
		t.Fatalf("snapshot 1 has %d edges", len(snap))
	}

	// Window 2: add+delete the same edge — cancels; no snapshot.
	if err := in.Add(Edge{Src: 4, Dst: 5, W: 1}); err != nil {
		t.Fatal(err)
	}
	if err := in.Delete(Edge{Src: 4, Dst: 5, W: 1}); err != nil {
		t.Fatal(err)
	}
	if err := in.Add(Edge{Src: 0, Dst: 1, W: 1}); err != nil { // re-add, window closes
		t.Fatal(err)
	}
	if g.NumSnapshots() != 3 {
		t.Fatalf("snapshots=%d after window 2", g.NumSnapshots())
	}
	snap2, _ := g.Snapshot(2)
	if len(snap2) != 4 {
		t.Fatalf("snapshot 2 has %d edges", len(snap2))
	}

	// Partial window + Flush.
	if err := in.Delete(Edge{Src: 1, Dst: 2, W: 1}); err != nil {
		t.Fatal(err)
	}
	if in.Pending() != 1 {
		t.Fatalf("pending=%d", in.Pending())
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if g.NumSnapshots() != 4 {
		t.Fatalf("snapshots=%d after flush", g.NumSnapshots())
	}

	// The result is a normal evolving graph: evaluate across it.
	res, err := g.Evaluate(Query{Algorithm: BFS, Source: 0}, 0, 3, WorkSharing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 4 {
		t.Fatalf("evaluated %d snapshots", len(res.Snapshots))
	}
}

func TestIngestorInconsistentWindowFails(t *testing.T) {
	g := New(3, []Edge{{Src: 0, Dst: 1, W: 1}})
	in, err := g.Ingestor(1)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting an edge the graph does not have fails when the window closes.
	if err := in.Delete(Edge{Src: 1, Dst: 2, W: 1}); err == nil {
		t.Fatal("inconsistent delete accepted")
	}
	if _, err := g.Ingestor(0); err == nil {
		t.Fatal("zero batch size accepted")
	}
}

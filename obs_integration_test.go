package commongraph

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"commongraph/internal/obs"
)

// TestTimingsAttributionAllStrategies proves every strategy attributes
// its wall time to the right phases. Workers and Parallelism are pinned
// to 1 so the execution is fully serialized and the per-phase sum is a
// set of disjoint subintervals of Total. Tracing is enabled so the
// allocation deltas populate too.
func TestTimingsAttributionAllStrategies(t *testing.T) {
	g, _ := buildEvolving(t, 7007, 9, 120, 120)
	q := Query{Algorithm: SSSP, Source: 0}

	// Which phases each strategy is expected to exercise on a
	// multi-snapshot window with churn. DirectHopParallel deliberately
	// leaves its per-hop phases unattributed — summing CPU time across
	// goroutines misstates a wall-time breakdown — so only its initial
	// solve appears.
	cases := []struct {
		strategy             Strategy
		add, del, mut, clone bool
	}{
		{KickStarter, true, true, true, false},
		{Independent, false, false, true, false},
		{DirectHop, true, false, true, true},
		{DirectHopParallel, false, false, false, false},
		{WorkSharing, true, false, true, false},
		{WorkSharingParallel, true, false, true, false},
	}
	for _, c := range cases {
		t.Run(c.strategy.String(), func(t *testing.T) {
			res, err := g.Evaluate(q, 0, 9, c.strategy, Options{
				Workers: 1, Parallelism: 1, Trace: NewTracer(),
			})
			if err != nil {
				t.Fatal(err)
			}
			ti := res.Timings
			if ti.Total <= 0 {
				t.Fatal("Total not recorded")
			}
			if ti.InitialCompute <= 0 {
				t.Error("InitialCompute not recorded")
			}
			check := func(name string, d time.Duration, want bool) {
				if want && d <= 0 {
					t.Errorf("%s = 0, expected non-zero", name)
				}
				if !want && d < 0 {
					t.Errorf("%s negative: %v", name, d)
				}
			}
			check("IncrementalAdd", ti.IncrementalAdd, c.add)
			check("IncrementalDelete", ti.IncrementalDelete, c.del)
			check("Mutation", ti.Mutation, c.mut)
			check("StateClone", ti.StateClone, c.clone)
			if !c.del && ti.IncrementalDelete != 0 {
				t.Errorf("IncrementalDelete = %v for a deletion-free strategy", ti.IncrementalDelete)
			}
			sum := ti.InitialCompute + ti.IncrementalAdd + ti.IncrementalDelete + ti.Mutation + ti.StateClone
			if sum > ti.Total+time.Millisecond {
				t.Errorf("phase sum %v exceeds wall total %v on a serialized run", sum, ti.Total)
			}
			if ti.AllocBytes == 0 || ti.Mallocs == 0 {
				t.Errorf("allocation deltas not populated under tracing: bytes=%d mallocs=%d",
					ti.AllocBytes, ti.Mallocs)
			}
		})
	}
}

// TestMaxHopTimeRecordedPerStrategy pins the contract on Result.MaxHopTime:
// non-zero for every strategy with an independent unit (per-snapshot hops,
// root schedule subtrees), zero only for the fully sequential KickStarter
// plan.
func TestMaxHopTimeRecordedPerStrategy(t *testing.T) {
	g, _ := buildEvolving(t, 7009, 8, 100, 100)
	q := Query{Algorithm: BFS, Source: 0}
	for _, s := range []Strategy{Independent, DirectHop, DirectHopParallel, WorkSharing, WorkSharingParallel} {
		res, err := g.Evaluate(q, 0, 8, s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxHopTime <= 0 {
			t.Errorf("%s: MaxHopTime not recorded", s)
		}
		if res.MaxHopTime > res.Timings.Total {
			t.Errorf("%s: MaxHopTime %v exceeds total %v", s, res.MaxHopTime, res.Timings.Total)
		}
	}
	res, err := g.Evaluate(q, 0, 8, KickStarter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxHopTime != 0 {
		t.Errorf("KickStarter: MaxHopTime = %v, want 0 (no independent units)", res.MaxHopTime)
	}
}

// promValue extracts one sample's value from a Prometheus exposition.
func promValue(t *testing.T, text, series string) int64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + " ([0-9]+)$")
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %s not in exposition:\n%s", series, text)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMetricsEndpointReflectsEvaluations runs real evaluations against a
// watcher, scrapes its HTTP metrics endpoint like a Prometheus server
// would, and asserts the scraped counters against the Result fields the
// evaluations returned. The registry is process-global, so everything is
// asserted as before/after deltas.
func TestMetricsEndpointReflectsEvaluations(t *testing.T) {
	g, _ := buildEvolving(t, 7011, 8, 80, 80)
	w, err := g.Watch(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := w.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	const slug = "work-sharing"
	scrape := func() string {
		resp, err := http.Get(ms.URL())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateExposition(body); err != nil {
			t.Fatalf("endpoint serves malformed exposition: %v", err)
		}
		return string(body)
	}
	queriesSeries := fmt.Sprintf(`commongraph_queries_total{strategy=%q}`, slug)
	addsSeries := fmt.Sprintf(`commongraph_additions_streamed_total{strategy=%q}`, slug)
	snapsSeries := fmt.Sprintf(`commongraph_snapshots_evaluated_total{strategy=%q}`, slug)

	// Prime the series so the before-scrape has them even on a fresh
	// registry, then measure the deltas of three more evaluations.
	if _, err := w.Evaluate(Query{Algorithm: BFS, Source: 0}, WorkSharing, Options{}); err != nil {
		t.Fatal(err)
	}
	before := scrape()
	var adds, snaps int64
	const runs = 3
	for i := 0; i < runs; i++ {
		res, err := w.Evaluate(Query{Algorithm: BFS, Source: 0}, WorkSharing, Options{})
		if err != nil {
			t.Fatal(err)
		}
		adds += res.AdditionsProcessed
		snaps += int64(len(res.Snapshots))
	}
	after := scrape()

	if got := promValue(t, after, queriesSeries) - promValue(t, before, queriesSeries); got != runs {
		t.Errorf("queries counter delta = %d, want %d", got, runs)
	}
	if got := promValue(t, after, addsSeries) - promValue(t, before, addsSeries); got != adds {
		t.Errorf("additions counter delta = %d, Result fields sum to %d", got, adds)
	}
	if got := promValue(t, after, snapsSeries) - promValue(t, before, snapsSeries); got != snaps {
		t.Errorf("snapshots counter delta = %d, Result fields sum to %d", got, snaps)
	}

	// The JSON view of the same registry must agree with the text view.
	resp, err := http.Get(ms.URL() + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var flat map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatalf("JSON metrics view does not parse: %v", err)
	}
	family, ok := flat["commongraph_queries_total"].(map[string]any)
	if !ok {
		t.Fatalf("JSON view missing commongraph_queries_total family: %v", flat["commongraph_queries_total"])
	}
	if v, ok := family[`strategy="`+slug+`"`]; !ok {
		t.Errorf("JSON view missing the %s series of commongraph_queries_total", slug)
	} else if int64(v.(float64)) != promValue(t, after, queriesSeries) {
		t.Errorf("JSON view = %v, text view = %d", v, promValue(t, after, queriesSeries))
	}

	// The companion /window endpoint reports the live window.
	wresp, err := http.Get("http://" + ms.Addr() + "/window")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var win struct {
		From        int `json:"from"`
		To          int `json:"to"`
		Width       int `json:"width"`
		CommonEdges int `json:"common_edges"`
	}
	if err := json.NewDecoder(wresp.Body).Decode(&win); err != nil {
		t.Fatal(err)
	}
	from, to := w.Window()
	if win.From != from || win.To != to || win.Width != to-from+1 {
		t.Errorf("/window = %+v, watcher window [%d,%d]", win, from, to)
	}
	if win.CommonEdges != w.CommonEdges() {
		t.Errorf("/window common_edges = %d, watcher reports %d", win.CommonEdges, w.CommonEdges())
	}
}

module commongraph

go 1.22

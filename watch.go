package commongraph

import (
	"fmt"

	"commongraph/internal/core"
)

// Watcher keeps the CommonGraph representation of a snapshot window alive
// and up to date as the evolving graph grows — the maintenance behaviour
// of §4.1. Instead of rebuilding the common graph per query, a service
// appends snapshots as they arrive (and optionally slides the window
// forward) paying only incremental set work, then evaluates repeatedly.
type Watcher struct {
	g *EvolvingGraph
	m *core.MaintainedRep
}

// Watch creates a maintained window over [from, to].
func (g *EvolvingGraph) Watch(from, to int) (*Watcher, error) {
	m, err := core.NewMaintainedRep(core.Window{Store: g.store, From: from, To: to})
	if err != nil {
		return nil, err
	}
	return &Watcher{g: g, m: m}, nil
}

// Window returns the watcher's current snapshot range.
func (w *Watcher) Window() (from, to int) {
	win := w.m.Window()
	return win.From, win.To
}

// CommonEdges returns the current common graph's size.
func (w *Watcher) CommonEdges() int { return len(w.m.Rep().Common) }

// Append extends the window to the next snapshot, which must already have
// been created with ApplyUpdates.
func (w *Watcher) Append() error { return w.m.Append() }

// Advance drops the window's oldest snapshot.
func (w *Watcher) Advance() error { return w.m.Advance() }

// Slide appends the next snapshot and drops the oldest, keeping the
// window's width.
func (w *Watcher) Slide() error { return w.m.Slide() }

// Evaluate runs a query over the maintained window. Only the CommonGraph
// strategies apply (the whole point of maintaining the representation);
// KickStarter would stream from the store directly.
func (w *Watcher) Evaluate(q Query, strategy Strategy, opt Options) (*Result, error) {
	if q.Algorithm == nil {
		return nil, fmt.Errorf("commongraph: query has no algorithm")
	}
	cfg := core.Config{
		Algo:            q.Algorithm,
		Source:          q.Source,
		Engine:          opt.engine(),
		KeepValues:      opt.KeepValues,
		Parallelism:     opt.Parallelism,
		OptimalSchedule: opt.OptimalSchedule,
	}
	rep := w.m.Rep()
	var (
		inner *core.Result
		err   error
	)
	switch strategy {
	case DirectHop:
		inner, err = core.DirectHop(rep, cfg)
	case DirectHopParallel:
		inner, err = core.DirectHopParallel(rep, cfg)
	case WorkSharing:
		inner, _, err = core.EvaluateWorkSharing(rep, cfg)
	case WorkSharingParallel:
		inner, _, err = core.EvaluateWorkSharingParallel(rep, cfg)
	default:
		return nil, fmt.Errorf("commongraph: watcher supports only CommonGraph strategies, not %v", strategy)
	}
	if err != nil {
		return nil, err
	}
	return convertResult(inner, w.m.Window().From, strategy), nil
}

// EvaluateMulti evaluates several queries over the same window with the
// Work-Sharing schedule built once and shared across all of them.
func (g *EvolvingGraph) EvaluateMulti(queries []Query, from, to int, opt Options) ([]*Result, error) {
	w := core.Window{Store: g.store, From: from, To: to}
	rep, err := core.BuildRep(w)
	if err != nil {
		return nil, err
	}
	cfgs := make([]core.Config, len(queries))
	for i, q := range queries {
		if q.Algorithm == nil {
			return nil, fmt.Errorf("commongraph: query %d has no algorithm", i)
		}
		cfgs[i] = core.Config{
			Algo:       q.Algorithm,
			Source:     q.Source,
			Engine:     opt.engine(),
			KeepValues: opt.KeepValues,
		}
	}
	inner, _, err := core.EvaluateMany(rep, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(inner))
	for i, r := range inner {
		out[i] = convertResult(r, from, WorkSharing)
	}
	return out, nil
}

// convertResult maps a core result into the public shape.
func convertResult(inner *core.Result, from int, strategy Strategy) *Result {
	res := &Result{
		Strategy:           strategy,
		AdditionsProcessed: inner.AdditionsProcessed,
		MaxHopTime:         inner.MaxHopTime,
		Timings: Timings{
			InitialCompute: inner.Cost.InitialCompute,
			IncrementalAdd: inner.Cost.IncrementalAdd,
			Mutation:       inner.Cost.OverlayBuild,
			Total:          inner.Cost.Total(),
		},
	}
	for _, s := range inner.Snapshots {
		res.Snapshots = append(res.Snapshots, SnapshotResult{
			Index:    from + s.Index,
			Reached:  s.Reached,
			Checksum: s.Checksum,
			Values:   s.Values,
		})
	}
	return res
}

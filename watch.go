package commongraph

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"commongraph/internal/core"
	"commongraph/internal/faults"
	"commongraph/internal/obs"
	"commongraph/internal/repl"
)

// Watcher keeps the CommonGraph representation of a snapshot window alive
// and up to date as the evolving graph grows — the maintenance behaviour
// of §4.1. Instead of rebuilding the common graph per query, a service
// appends snapshots as they arrive (and optionally slides the window
// forward) paying only incremental set work, then evaluates repeatedly.
//
// A Watcher is safe for concurrent use: maintenance (Append, Advance,
// Slide) takes the write lock while evaluations snapshot the current
// representation under the read lock. Representations are immutable once
// built, so an evaluation racing a slide simply computes over the window
// that was current when it started.
type Watcher struct {
	g     *EvolvingGraph
	mu    sync.RWMutex
	m     *core.MaintainedRep
	retry RetryPolicy

	// commitNotifier counts successful maintenance commits (Append,
	// Advance, Slide) and fans each one out to registered hooks.
	commitNotifier

	// Slide persistence (PersistMaintenance): after the window moves
	// forward, snapshots behind it fold into the durable store's base
	// segment in the background. bgCtx is cancelled by Close so queued
	// folds drain instead of outliving the watcher.
	persist        *GraphStore
	bg             sync.WaitGroup
	bgCtx          context.Context
	bgCancel       context.CancelFunc
	compactErrMu   sync.Mutex
	lastCompactErr error
}

// RetryPolicy bounds the watcher's automatic retry of transient
// maintenance failures (a store backend briefly unavailable, an injected
// transient fault in tests). Non-transient errors are never retried.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first;
	// values below 1 mean a single attempt (no retry).
	Attempts int
	// Backoff is the wait before the first retry; it doubles on each
	// subsequent one. The wait is interruptible: Watcher.Close cancels a
	// retry mid-backoff instead of waiting it out.
	Backoff time.Duration
	// Jitter spreads each wait uniformly over [d·(1−J), d·(1+J)) with a
	// deterministic seeded stream, so many watchers retrying against the
	// same briefly-unavailable backend do not re-attempt in lockstep.
	// 0 means the default 20%; negative disables jitter.
	Jitter float64
}

// DefaultRetry is the policy a new Watcher starts with: three attempts
// with a small doubling, jittered backoff.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 2 * time.Millisecond}

// Watch creates a maintained window over [from, to].
func (g *EvolvingGraph) Watch(from, to int) (*Watcher, error) {
	m, err := core.NewMaintainedRep(core.Window{Store: g.store, From: from, To: to})
	if err != nil {
		return nil, err
	}
	// The watcher is its own lifecycle root: background compactions run
	// until Close, not until some caller's request context ends.
	bgCtx, bgCancel := context.WithCancel(context.Background()) //cgvet:ignore ctxflow -- watcher lifecycle root; cancelled by Close, no caller context outlives it
	return &Watcher{g: g, m: m, retry: DefaultRetry, bgCtx: bgCtx, bgCancel: bgCancel}, nil
}

// SetRetry replaces the watcher's maintenance retry policy.
func (w *Watcher) SetRetry(p RetryPolicy) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.retry = p
}

// commitNotifier is the window-generation counter and commit-hook fan-out
// shared by the Watcher and the replication Follower: anything that
// serves cached results over a maintained window keys its cache on the
// generation and invalidates from the hooks.
type commitNotifier struct {
	gen   atomic.Uint64
	hookM sync.Mutex
	hooks []func(gen uint64)
}

// Generation returns the window-commit counter: it increments once per
// successful maintenance step (Append, Advance, Slide — and, on a
// follower, each re-bootstrap). A result evaluated at generation G
// describes the window as of G; the query service keys its result cache
// on (query, window, generation) so a commit immediately invalidates
// every cached response.
func (c *commitNotifier) Generation() uint64 { return c.gen.Load() }

// OnCommit registers f to run after every successful maintenance commit,
// with the new generation. Hooks run synchronously on the maintaining
// goroutine, after the window lock is released — they may call back into
// the owner, but should stay cheap (cache invalidation, a metric).
func (c *commitNotifier) OnCommit(f func(gen uint64)) {
	c.hookM.Lock()
	c.hooks = append(c.hooks, f)
	c.hookM.Unlock()
}

// notifyCommit bumps the generation and runs the registered hooks.
// Called without the owner's window lock held.
func (c *commitNotifier) notifyCommit() {
	gen := c.gen.Add(1)
	c.hookM.Lock()
	hooks := make([]func(uint64), len(c.hooks))
	copy(hooks, c.hooks)
	c.hookM.Unlock()
	for _, f := range hooks {
		f(gen)
	}
}

// Window returns the watcher's current snapshot range.
func (w *Watcher) Window() (from, to int) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	win := w.m.Window()
	return win.From, win.To
}

// CommonEdges returns the current common graph's size.
func (w *Watcher) CommonEdges() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.m.Rep().Common)
}

// Append extends the window to the next snapshot, which must already have
// been created with ApplyUpdates.
func (w *Watcher) Append() error { return w.maintain("append", (*core.MaintainedRep).Append) }

// Advance drops the window's oldest snapshot.
func (w *Watcher) Advance() error { return w.maintain("advance", (*core.MaintainedRep).Advance) }

// Slide appends the next snapshot and drops the oldest, keeping the
// window's width. Slide is atomic: a failure in its second half rolls the
// maintained window back to its pre-Slide state.
func (w *Watcher) Slide() error { return w.maintain("slide", (*core.MaintainedRep).Slide) }

// PersistMaintenance ties the watcher's window to a durable store: each
// time Advance or Slide moves the window start forward, the snapshots
// the window left behind are folded into the store's base segment by a
// background compaction (no query will ask for them again — the slide
// compaction of DESIGN.md "Persistence"). The watcher's graph should be
// the store's bound graph. WaitCompaction blocks until queued folds
// finish and reports the most recent failure.
func (w *Watcher) PersistMaintenance(gs *GraphStore) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.persist = gs
}

// WaitCompaction blocks until all background slide compactions queued so
// far complete, returning the most recent compaction error (compaction
// failures never affect the in-memory window, so maintenance itself does
// not surface them).
func (w *Watcher) WaitCompaction() error {
	w.bg.Wait()
	w.compactErrMu.Lock()
	defer w.compactErrMu.Unlock()
	return w.lastCompactErr
}

// Close ends the watcher's background work: queued slide compactions that
// have not started are cancelled, one already inside the store completes
// (segment swaps are never torn), and Close waits for all of them to
// drain before returning the most recent real compaction failure.
// Cancellation itself is not an error. The watcher's window remains
// evaluable after Close; only the background persistence stops. Close is
// idempotent.
func (w *Watcher) Close() error {
	w.bgCancel()
	return w.WaitCompaction()
}

// maintain runs one maintenance step under the write lock, retrying
// transient failures per the watcher's policy. Maintenance steps swap the
// representation pointer only on success (Slide rolls back internally),
// so a failed step leaves the previous window fully evaluable.
//
// Each step is observable: one "watcher.<kind>" span on the process
// tracer, the maintenance op/error counters by kind, and the retry
// counter per transient re-attempt.
func (w *Watcher) maintain(kind string, step func(*core.MaintainedRep) error) error {
	err := w.maintainLocked(kind, step)
	if err == nil {
		// The commit hooks (generation bump, serve-cache invalidation) run
		// after the window lock is released so they can call back into the
		// watcher without deadlocking.
		w.notifyCommit()
	}
	return err
}

func (w *Watcher) maintainLocked(kind string, step func(*core.MaintainedRep) error) error {
	sp := obs.Active().StartSpan("watcher." + kind)
	defer sp.End()
	w.mu.Lock()
	defer w.mu.Unlock()
	attempts := w.retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	// Jittered exponential waits (shared with the replication catch-up
	// loop), gated on the watcher's lifecycle context: Close interrupts a
	// backing-off retry instead of waiting it out.
	bo := repl.Backoff{Base: w.retry.Backoff, Jitter: w.retry.Jitter}
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			obs.MaintenanceRetries().Inc()
			sp.SetAttr(obs.Int("retry", try))
			if w.retry.Backoff > 0 {
				if serr := bo.Sleep(w.bgCtx); serr != nil {
					obs.MaintenanceErrors(kind).Inc()
					sp.SetAttr(obs.String("error", err.Error()))
					return fmt.Errorf("commongraph: maintenance retry interrupted by Close: %w", err)
				}
			}
		}
		err = step(w.m)
		if err == nil {
			obs.MaintenanceOps(kind).Inc()
			win := w.m.Window()
			sp.SetAttr(obs.Int("from", win.From), obs.Int("to", win.To))
			if w.persist != nil && (kind == "advance" || kind == "slide") {
				w.bg.Add(1)
				go func(gs *GraphStore, before int) {
					defer w.bg.Done()
					cerr := gs.CompactContext(w.bgCtx, before)
					if cerr != nil && !errors.Is(cerr, context.Canceled) {
						w.compactErrMu.Lock()
						w.lastCompactErr = cerr
						w.compactErrMu.Unlock()
					}
				}(w.persist, win.From)
			}
			return nil
		}
		if !faults.IsTransient(err) {
			obs.MaintenanceErrors(kind).Inc()
			sp.SetAttr(obs.String("error", err.Error()))
			return err
		}
	}
	obs.MaintenanceErrors(kind).Inc()
	sp.SetAttr(obs.String("error", err.Error()))
	return fmt.Errorf("commongraph: maintenance failed after %d attempts: %w", attempts, err)
}

// Run runs the request's query over the maintained window with its
// strategy. The request's Window is ignored — the watcher's maintained
// window is the whole point — and only the CommonGraph strategies apply;
// KickStarter would stream from the store directly. The context cancels
// the evaluation at schedule-edge boundaries, like EvolvingGraph.Run.
func (w *Watcher) Run(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background() //cgvet:ignore ctxflow -- nil-ctx compatibility shim; callers with a real context pass it through
	}
	opt := req.Options
	opt.Context = ctx
	return w.evaluate(req.Query, req.Strategy, opt)
}

// Evaluate runs a query over the maintained window. Cancellation comes
// from Options.Context.
//
// Deprecated: use Run, which takes the context as a parameter.
func (w *Watcher) Evaluate(q Query, strategy Strategy, opt Options) (*Result, error) {
	return w.evaluate(q, strategy, opt)
}

func (w *Watcher) evaluate(q Query, strategy Strategy, opt Options) (*Result, error) {
	if q.Algorithm == nil {
		return nil, fmt.Errorf("commongraph: query has no algorithm")
	}
	cfg := opt.config(q)
	// Snapshot the representation under the read lock; it is immutable,
	// so the evaluation itself runs lock-free even while maintenance
	// swaps in a newer window.
	w.mu.RLock()
	rep := w.m.Rep()
	w.mu.RUnlock()
	slug := strategy.Slug()
	// Join any trace context on the request context — a follower read
	// under a live ingest trace links back to the primary's commit spans.
	sp := opt.tracer().StartRemote(obs.FromContext(opt.context()), "evaluate",
		obs.String("strategy", slug), obs.String("algo", q.Algorithm.Name()),
		obs.Int("source", int(q.Source)), obs.String("origin", "watcher"),
		obs.Int("from", rep.Window.From), obs.Int("to", rep.Window.To))
	cfg.Trace = sp
	start := time.Now()
	switch strategy {
	case DirectHop, DirectHopParallel, WorkSharing, WorkSharingParallel:
	default:
		sp.End()
		return nil, fmt.Errorf("commongraph: watcher supports only CommonGraph strategies, not %v", strategy)
	}
	inner, err := runCommonGraph(rep, strategy, opt, cfg)
	obs.Queries(slug).Inc()
	slow := obs.SlowEntry{Trace: sp.TraceID(), Strategy: slug,
		Dur: time.Since(start), Start: start,
		From: rep.Window.From, To: rep.Window.To}
	if err != nil {
		obs.QueryErrors(slug).Inc()
		sp.SetAttr(obs.String("error", err.Error()))
		sp.End()
		slow.Err = err.Error()
		obs.Slow().Observe(slow)
		return nil, err
	}
	res := convertResult(inner, rep.Window.From, strategy)
	obs.Slow().Observe(slow)
	obs.AdditionsStreamed(slug).Add(res.AdditionsProcessed)
	obs.SnapshotsEvaluated(slug).Add(int64(len(res.Snapshots)))
	sp.SetAttr(obs.Int64("additions_processed", res.AdditionsProcessed))
	sp.End()
	return res, nil
}

// MetricsServer is a running metrics/ops endpoint started by
// Watcher.ServeMetrics or Follower.ServeOps. Close shuts it down,
// severing idle connections too (the server carries read-header and idle
// timeouts, so a stalled client can neither pin a connection forever nor
// keep Close from returning).
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
	ops *obs.OpsMux

	// stopRuntime releases this server's reference on the process
	// runtime-metrics collector (refcounted: the sampling goroutine stops
	// when the last ops server closes).
	stopRuntime func()
	closeOnce   sync.Once
	closeErr    error
}

// Addr returns the server's bound address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// URL returns the metrics endpoint URL.
func (m *MetricsServer) URL() string { return "http://" + m.Addr() + "/metrics" }

// Close stops the server immediately, closing the listener and every
// accepted connection, idle ones included, and releases its reference on
// the runtime-metrics collector. Idempotent.
func (m *MetricsServer) Close() error {
	m.closeOnce.Do(func() {
		m.closeErr = m.srv.Close()
		if m.stopRuntime != nil {
			m.stopRuntime()
		}
	})
	return m.closeErr
}

// SetReadiness replaces the /readyz probe. The default always reports
// ready; a replication follower installs its staleness-budget check.
func (m *MetricsServer) SetReadiness(f func() (ok bool, detail string)) {
	m.ops.SetReadiness(f)
}

// newOpsServer builds the shared HTTP ops surface — obs.NewOpsMux's
// /metrics (process registry, with runtime/metrics gauges refreshed by a
// background sampler while any ops server runs), /healthz, /readyz, and
// the /debug forensic endpoints — plus whatever routes the owner adds.
// The http.Server carries conservative timeouts so a client that never
// finishes its request headers, or parks an idle keep-alive connection,
// cannot hold resources indefinitely.
func newOpsServer(addr string, configure func(mux *obs.OpsMux, m *MetricsServer)) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("commongraph: ops listener: %w", err)
	}
	m := &MetricsServer{ln: ln, ops: obs.NewOpsMux(), stopRuntime: obs.StartRuntimeCollector(0)}
	if configure != nil {
		configure(m.ops, m)
	}
	m.srv = &http.Server{
		Handler:           m.ops,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	//cgvet:ignore goleak -- serves until MetricsServer.Close shuts the listener; Serve then returns ErrServerClosed and the goroutine exits
	go m.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return m, nil
}

// ServeMetrics starts an HTTP server on addr (e.g. ":9090", or ":0" for
// an ephemeral port) exposing the watcher's observability surface:
//
//	/metrics  process-wide metric registry — Prometheus text exposition
//	          by default, expvar-style JSON with ?format=json
//	/healthz  liveness probe (always 200 while serving)
//	/readyz   readiness probe (200 by default; see SetReadiness)
//	/window   the watcher's current window as JSON
//	          {"from":F,"to":T,"width":W,"common_edges":E}
//	/debug/flightrecorder  completed root spans retained in the flight ring
//	/debug/slowlog         slow-query reservoir samples, by strategy
//	/debug/trace?id=<hex>  one retained trace as Chrome trace JSON
//
// The registry is process-wide (every watcher, evaluation, ingest batcher
// and fault injection in the process feeds it); /window is this watcher's
// live state. The server runs until Close.
func (w *Watcher) ServeMetrics(addr string) (*MetricsServer, error) {
	return newOpsServer(addr, func(mux *obs.OpsMux, _ *MetricsServer) {
		mux.HandleFunc("/window", func(rw http.ResponseWriter, _ *http.Request) {
			from, to := w.Window()
			rw.Header().Set("Content-Type", "application/json")
			json.NewEncoder(rw).Encode(map[string]int{
				"from":         from,
				"to":           to,
				"width":        to - from + 1,
				"common_edges": w.CommonEdges(),
			})
		})
	})
}

// RunMulti evaluates several queries over the same window with the
// Work-Sharing schedule built once and shared across all of them. The
// context cancels the evaluation like Run's.
func (g *EvolvingGraph) RunMulti(ctx context.Context, queries []Query, win Window, opt Options) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background() //cgvet:ignore ctxflow -- nil-ctx compatibility shim; callers with a real context pass it through
	}
	opt.Context = ctx
	return g.evaluateMulti(queries, win.From, win.To, opt)
}

// EvaluateMulti evaluates several queries over the same window with the
// Work-Sharing schedule built once and shared across all of them.
//
// Deprecated: use RunMulti, which takes the context as a parameter.
func (g *EvolvingGraph) EvaluateMulti(queries []Query, from, to int, opt Options) ([]*Result, error) {
	return g.evaluateMulti(queries, from, to, opt)
}

func (g *EvolvingGraph) evaluateMulti(queries []Query, from, to int, opt Options) ([]*Result, error) {
	w := core.Window{Store: g.store, From: from, To: to}
	rep, err := core.BuildRep(w)
	if err != nil {
		return nil, err
	}
	cfgs := make([]core.Config, len(queries))
	for i, q := range queries {
		if q.Algorithm == nil {
			return nil, fmt.Errorf("commongraph: query %d has no algorithm", i)
		}
		cfgs[i] = opt.config(q)
	}
	inner, _, err := core.EvaluateMany(rep, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(inner))
	for i, r := range inner {
		out[i] = convertResult(r, from, WorkSharing)
	}
	return out, nil
}

// convertResult maps a core result into the public shape.
func convertResult(inner *core.Result, from int, strategy Strategy) *Result {
	res := &Result{
		Strategy:           strategy,
		AdditionsProcessed: inner.AdditionsProcessed,
		EdgesEvaluated:     inner.Work.EdgesPushed,
		MaxHopTime:         inner.MaxHopTime,
		Degraded:           inner.Degraded,
		Timings: Timings{
			InitialCompute: inner.Cost.InitialCompute,
			IncrementalAdd: inner.Cost.IncrementalAdd,
			Mutation:       inner.Cost.OverlayBuild,
			StateClone:     inner.Cost.StateClone,
			Total:          inner.Cost.Total(),
		},
	}
	if len(inner.SnapshotErrors) > 0 {
		res.SnapshotErrors = make(map[int]error, len(inner.SnapshotErrors))
		for k, e := range inner.SnapshotErrors {
			res.SnapshotErrors[from+k] = e
		}
	}
	for _, s := range inner.Snapshots {
		res.Snapshots = append(res.Snapshots, SnapshotResult{
			Index:    from + s.Index,
			Reached:  s.Reached,
			Checksum: s.Checksum,
			Values:   s.Values,
		})
	}
	return res
}

package commongraph

// Cross-cutting integration tests: dataset round-trips feeding evaluation,
// concurrent use of one EvolvingGraph, and a long-horizon stress run over
// every strategy.

import (
	"path/filepath"
	"sync"
	"testing"

	"commongraph/internal/dataset"
)

func TestDatasetRoundTripPreservesResults(t *testing.T) {
	g, _ := buildEvolving(t, 401, 6, 40, 40)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := dataset.Save(dir, g.Store(), dataset.Binary); err != nil {
		t.Fatal(err)
	}
	store, err := dataset.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded := FromStore(store)
	if loaded.NumSnapshots() != g.NumSnapshots() || loaded.NumVertices() != g.NumVertices() {
		t.Fatalf("shape changed across disk: %d/%d vs %d/%d",
			loaded.NumSnapshots(), loaded.NumVertices(), g.NumSnapshots(), g.NumVertices())
	}
	q := Query{Algorithm: SSNP, Source: 0}
	want, err := g.Evaluate(q, 0, 6, WorkSharing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Evaluate(q, 0, 6, WorkSharing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.Snapshots {
		if want.Snapshots[k].Checksum != got.Snapshots[k].Checksum {
			t.Fatalf("snapshot %d changed across a disk round trip", k)
		}
	}
}

func TestConcurrentEvaluations(t *testing.T) {
	// The EvolvingGraph documents safety for concurrent Evaluate calls;
	// hammer one instance from several goroutines with different
	// strategies and algorithms and check every result against a serial
	// re-run.
	g, _ := buildEvolving(t, 409, 5, 30, 30)
	type job struct {
		q Query
		s Strategy
	}
	jobs := []job{
		{Query{Algorithm: BFS, Source: 0}, DirectHop},
		{Query{Algorithm: SSSP, Source: 3}, WorkSharing},
		{Query{Algorithm: SSWP, Source: 7}, KickStarter},
		{Query{Algorithm: SSNP, Source: 1}, DirectHopParallel},
		{Query{Algorithm: Viterbi, Source: 0}, WorkSharingParallel},
		{Query{Algorithm: BFS, Source: 9}, Independent},
	}
	results := make([]*Result, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			res, err := g.Evaluate(j.q, 0, 5, j.s, Options{})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			results[i] = res
		}(i, j)
	}
	wg.Wait()
	for i, j := range jobs {
		if results[i] == nil {
			continue
		}
		serial, err := g.Evaluate(j.q, 0, 5, j.s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for k := range serial.Snapshots {
			if serial.Snapshots[k].Checksum != results[i].Snapshots[k].Checksum {
				t.Fatalf("job %d: concurrent result differs at snapshot %d", i, k)
			}
		}
	}
}

func TestLongHorizonAllStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// 30 transitions with heavy churn; every strategy must agree on every
	// snapshot, including after delete/re-add cycles the random stream
	// occasionally produces.
	g, _ := buildEvolving(t, 419, 30, 60, 60)
	q := Query{Algorithm: SSSP, Source: 0}
	strategies := []Strategy{Independent, KickStarter, DirectHop, DirectHopParallel, WorkSharing, WorkSharingParallel}
	var base *Result
	for _, s := range strategies {
		res, err := g.Evaluate(q, 0, 30, s, Options{})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Snapshots) != 31 {
			t.Fatalf("%v: %d snapshots", s, len(res.Snapshots))
		}
		if base == nil {
			base = res
			continue
		}
		for k := range base.Snapshots {
			if base.Snapshots[k].Checksum != res.Snapshots[k].Checksum {
				t.Fatalf("%v disagrees with %v at snapshot %d", s, strategies[0], k)
			}
		}
	}
	// And the optimal schedule agrees too.
	opt, err := g.Evaluate(q, 0, 30, WorkSharing, Options{OptimalSchedule: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := range base.Snapshots {
		if base.Snapshots[k].Checksum != opt.Snapshots[k].Checksum {
			t.Fatalf("optimal schedule disagrees at snapshot %d", k)
		}
	}
}

package commongraph

import (
	"reflect"
	"testing"
	"testing/quick"

	"commongraph/internal/engine"
	"commongraph/internal/gen"
	"commongraph/internal/graph"
)

// buildEvolving creates a public-API evolving graph from a generated
// workload.
func buildEvolving(t *testing.T, seed uint64, transitions, adds, dels int) (*EvolvingGraph, int) {
	t.Helper()
	n, base := gen.RMAT(gen.DefaultRMAT(8, 1000, seed))
	trs, err := gen.Stream(n, base, gen.StreamConfig{
		Transitions: transitions, Additions: adds, Deletions: dels, Seed: seed + 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := New(n, base)
	for _, tr := range trs {
		if _, err := g.ApplyUpdates(tr.Additions, tr.Deletions); err != nil {
			t.Fatal(err)
		}
	}
	return g, n
}

func TestPublicAPIBasics(t *testing.T) {
	g := New(3, []Edge{{Src: 0, Dst: 1, W: 2}, {Src: 1, Dst: 2, W: 5}})
	if g.NumVertices() != 3 || g.NumSnapshots() != 1 {
		t.Fatalf("n=%d snaps=%d", g.NumVertices(), g.NumSnapshots())
	}
	v, err := g.ApplyUpdates([]Edge{{Src: 2, Dst: 0, W: 1}}, []Edge{{Src: 0, Dst: 1, W: 2}})
	if err != nil || v != 1 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	snap, err := g.Snapshot(1)
	if err != nil || len(snap) != 2 {
		t.Fatalf("snap=%v err=%v", snap, err)
	}
	add, del, err := g.Diff(0, 1)
	if err != nil || len(add) != 1 || len(del) != 1 {
		t.Fatalf("diff add=%v del=%v err=%v", add, del, err)
	}
}

func TestEvaluateAllStrategiesAgree(t *testing.T) {
	g, n := buildEvolving(t, 61, 5, 40, 40)
	q := Query{Algorithm: SSSP, Source: 0}
	opts := Options{KeepValues: true}
	var results []*Result
	for _, s := range []Strategy{KickStarter, DirectHop, DirectHopParallel, WorkSharing} {
		res, err := g.Evaluate(q, 0, 5, s, opts)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Snapshots) != 6 {
			t.Fatalf("%v: %d snapshots", s, len(res.Snapshots))
		}
		if res.Strategy != s {
			t.Fatalf("strategy not recorded")
		}
		if res.Timings.Total <= 0 {
			t.Fatalf("%v: no total time", s)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		for k := range results[0].Snapshots {
			a, b := results[0].Snapshots[k], results[i].Snapshots[k]
			if a.Checksum != b.Checksum || a.Reached != b.Reached || a.Index != b.Index {
				t.Fatalf("strategy %v disagrees with KickStarter at snapshot %d", results[i].Strategy, k)
			}
			for v := 0; v < n; v++ {
				if a.Values[v] != b.Values[v] {
					t.Fatalf("strategy %v value mismatch at snapshot %d vertex %d", results[i].Strategy, k, v)
				}
			}
		}
	}
	// CommonGraph strategies must process zero deletions.
	for _, res := range results[1:] {
		if res.DeletionsProcessed != 0 {
			t.Fatalf("%v processed %d deletions", res.Strategy, res.DeletionsProcessed)
		}
	}
	if results[0].DeletionsProcessed == 0 {
		t.Fatal("KickStarter should process deletions")
	}
	// Work-sharing must not process more additions than direct hop.
	if results[3].AdditionsProcessed > results[1].AdditionsProcessed {
		t.Fatalf("work sharing %d > direct hop %d additions",
			results[3].AdditionsProcessed, results[1].AdditionsProcessed)
	}
}

func TestEvaluateSubWindow(t *testing.T) {
	g, _ := buildEvolving(t, 67, 6, 30, 30)
	res, err := g.Evaluate(Query{Algorithm: BFS, Source: 1}, 2, 4, DirectHop, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 3 {
		t.Fatalf("snapshots=%d", len(res.Snapshots))
	}
	for i, s := range res.Snapshots {
		if s.Index != 2+i {
			t.Fatalf("snapshot %d has absolute index %d", i, s.Index)
		}
	}
	// Same window via KickStarter must agree (it starts streaming at 2).
	ks, err := g.Evaluate(Query{Algorithm: BFS, Source: 1}, 2, 4, KickStarter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Snapshots {
		if res.Snapshots[i].Checksum != ks.Snapshots[i].Checksum {
			t.Fatalf("sub-window disagreement at %d", i)
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	g, _ := buildEvolving(t, 71, 2, 10, 10)
	if _, err := g.Evaluate(Query{Algorithm: nil, Source: 0}, 0, 1, DirectHop, Options{}); err == nil {
		t.Fatal("nil algorithm accepted")
	}
	if _, err := g.Evaluate(Query{Algorithm: BFS, Source: 1 << 30}, 0, 1, DirectHop, Options{}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := g.Evaluate(Query{Algorithm: BFS, Source: 0}, 0, 99, DirectHop, Options{}); err == nil {
		t.Fatal("bad window accepted")
	}
	if _, err := g.Evaluate(Query{Algorithm: BFS, Source: 0}, 0, 1, Strategy(99), Options{}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		KickStarter:       "KickStarter",
		DirectHop:         "Direct-Hop",
		DirectHopParallel: "Direct-Hop(parallel)",
		WorkSharing:       "Work-Sharing",
		Strategy(42):      "Strategy(42)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d -> %q want %q", int(s), s.String(), want)
		}
	}
}

func TestPlan(t *testing.T) {
	g, _ := buildEvolving(t, 73, 8, 40, 40)
	p, err := g.Plan(0, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Snapshots != 9 || p.CommonEdges <= 0 {
		t.Fatalf("%+v", p)
	}
	if p.WorkSharingAdditions > p.DirectHopAdditions {
		t.Fatalf("sharing %d > direct %d", p.WorkSharingAdditions, p.DirectHopAdditions)
	}
	if p.Tree == "" {
		t.Fatal("no tree rendering")
	}
	if _, err := g.Plan(5, 2, Options{}); err == nil {
		t.Fatal("bad window accepted")
	}
}

func TestAlgorithmHelpers(t *testing.T) {
	if len(Algorithms()) != 5 {
		t.Fatal("want 5 algorithms")
	}
	if a, ok := AlgorithmByName("Viterbi"); !ok || a.Name() != "Viterbi" {
		t.Fatal("ByName failed")
	}
	if p := ViterbiProbability(Viterbi.SourceValue()); p != 1.0 {
		t.Fatalf("source probability %f", p)
	}
	if p := ViterbiProbability(0); p != 0 {
		t.Fatalf("zero probability %f", p)
	}
}

func TestMaxHopTimeReported(t *testing.T) {
	g, _ := buildEvolving(t, 79, 3, 20, 20)
	q := Query{Algorithm: SSWP, Source: 0}
	// Sequential Direct-Hop times each hop in isolation, so it reports the
	// longest hop (the Table 5 estimate) too.
	seq, err := g.Evaluate(q, 0, 3, DirectHop, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.MaxHopTime <= 0 {
		t.Fatal("direct hop should report the longest hop")
	}
	par, err := g.Evaluate(q, 0, 3, DirectHopParallel, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if par.MaxHopTime <= 0 {
		t.Fatal("parallel direct hop should report MaxHopTime")
	}
}

func TestPublicTypesAreAliases(t *testing.T) {
	// The facade must accept substrate types without conversion.
	var e Edge = graph.Edge{Src: 1, Dst: 2, W: 3}
	var el graph.EdgeList = []Edge{e}
	if len(el) != 1 {
		t.Fatal("alias failure")
	}
	var o Options
	if !reflect.DeepEqual(o.engine(), engine.Options{}) {
		t.Fatal("default engine options should be zero")
	}
}

func TestEvaluatePropertyRandomWindows(t *testing.T) {
	// For random evolving graphs, random sub-windows, and random
	// algorithms, all four strategies must agree checksum-for-checksum.
	f := func(seed int64) bool {
		g, _ := buildEvolving(t, uint64(seed)%1000+200, 6, 30, 30)
		algos := Algorithms()
		a := algos[int(uint64(seed)%uint64(len(algos)))]
		from := int(uint64(seed) % 3)
		to := from + 2 + int(uint64(seed)%2)
		q := Query{Algorithm: a, Source: VertexID(uint64(seed) % 64)}
		var prev *Result
		for _, s := range []Strategy{KickStarter, DirectHop, DirectHopParallel, WorkSharing} {
			res, err := g.Evaluate(q, from, to, s, Options{})
			if err != nil {
				return false
			}
			if prev != nil {
				for k := range res.Snapshots {
					if res.Snapshots[k].Checksum != prev.Snapshots[k].Checksum {
						return false
					}
				}
			}
			prev = res
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateSchedulerModesAgree(t *testing.T) {
	g, _ := buildEvolving(t, 83, 4, 30, 30)
	q := Query{Algorithm: SSNP, Source: 0}
	var sums []uint64
	for _, mode := range []SchedulerMode{Auto, Sync, Async} {
		res, err := g.Evaluate(q, 0, 4, WorkSharing, Options{Scheduler: mode})
		if err != nil {
			t.Fatal(err)
		}
		sums = append(sums, res.Snapshots[4].Checksum)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Fatalf("scheduler modes disagree: %v", sums)
	}
}

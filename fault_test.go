package commongraph

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"commongraph/internal/faults"
)

// TestCancelledContextRejectedEverywhere pins the uniform cancellation
// contract: an already-cancelled Options.Context stops every entry point
// — all six strategies, EvaluateMulti, and Watcher.Evaluate — with an
// error that unwraps to context.Canceled.
func TestCancelledContextRejectedEverywhere(t *testing.T) {
	g, _ := buildEvolving(t, 337, 5, 30, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Context: ctx}
	q := Query{Algorithm: SSSP, Source: 0}

	for _, st := range []Strategy{
		KickStarter, Independent, DirectHop, DirectHopParallel, WorkSharing, WorkSharingParallel,
	} {
		if _, err := g.Evaluate(q, 0, 5, st, opt); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: cancelled context not observed: %v", st, err)
		}
	}
	if _, err := g.EvaluateMulti([]Query{q}, 0, 5, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateMulti: cancelled context not observed: %v", err)
	}
	w, err := g.Watch(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Evaluate(q, WorkSharing, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("Watcher.Evaluate: cancelled context not observed: %v", err)
	}
}

// TestUnsupportedStrategyNamesItself pins the error-message satellite:
// rejections print the strategy's name, not a bare integer.
func TestUnsupportedStrategyNamesItself(t *testing.T) {
	g, _ := buildEvolving(t, 339, 3, 20, 20)
	q := Query{Algorithm: BFS, Source: 0}
	_, err := g.Evaluate(q, 0, 3, Strategy(99), Options{})
	if err == nil || !strings.Contains(err.Error(), "Strategy(99)") {
		t.Fatalf("unknown strategy error does not name it: %v", err)
	}
	w, werr := g.Watch(0, 3)
	if werr != nil {
		t.Fatal(werr)
	}
	_, err = w.Evaluate(q, KickStarter, Options{})
	if err == nil || !strings.Contains(err.Error(), "KickStarter") {
		t.Fatalf("watcher rejection does not name the strategy: %v", err)
	}
}

// TestEvaluateDegradeAcrossAPI drives the public Options.Degrade path: a
// panic injected into one schedule subtree must yield a successful,
// exact, Degraded-marked result with absolute snapshot indices in its
// failure causes.
func TestEvaluateDegradeAcrossAPI(t *testing.T) {
	g, _ := buildEvolving(t, 341, 8, 35, 35)
	q := Query{Algorithm: SSSP, Source: 0}
	clean, err := g.Evaluate(q, 0, 8, WorkSharing, Options{KeepValues: true})
	if err != nil {
		t.Fatal(err)
	}

	defer faults.Arm(&faults.Plan{Specs: []faults.Spec{
		{Point: faults.CoreSubtreeWalk, Mode: faults.Panic, After: 1, Times: 1},
	}})()
	res, err := g.Evaluate(q, 0, 8, WorkSharingParallel, Options{Degrade: true, KeepValues: true})
	if err != nil {
		t.Fatalf("degrade did not absorb the failed subtree: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded")
	}
	if len(res.SnapshotErrors) == 0 {
		t.Fatal("degraded result carries no failure causes")
	}
	for idx, cause := range res.SnapshotErrors {
		if idx < 0 || idx > 8 {
			t.Fatalf("failure cause at out-of-window snapshot %d", idx)
		}
		if cause == nil {
			t.Fatalf("snapshot %d has a nil failure cause", idx)
		}
	}
	for k := range clean.Snapshots {
		if clean.Snapshots[k].Checksum != res.Snapshots[k].Checksum {
			t.Fatalf("degraded snapshot %d differs from clean evaluation", k)
		}
	}
}

// TestWatcherRetriesTransientMaintenance pins the bounded-retry contract:
// transient store faults are retried per the policy and succeed once the
// fault stops firing; exhausted retries surface the final cause.
func TestWatcherRetriesTransientMaintenance(t *testing.T) {
	g, _ := buildEvolving(t, 343, 8, 25, 25)
	w, err := g.Watch(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	w.SetRetry(RetryPolicy{Attempts: 3})

	disarm := faults.Arm(&faults.Plan{Specs: []faults.Spec{
		{Point: faults.CoreMaintainAppend, Transient: true, Times: 2},
	}})
	err = w.Append()
	disarm()
	if err != nil {
		t.Fatalf("transient fault not retried to success: %v", err)
	}
	if _, to := w.Window(); to != 3 {
		t.Fatalf("retried append did not extend the window: to=%d", to)
	}

	// Non-transient faults are not retried at all.
	disarm = faults.Arm(&faults.Plan{Specs: []faults.Spec{
		{Point: faults.CoreMaintainAppend, Times: 1},
	}})
	err = w.Append()
	disarm()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("non-transient fault lost: %v", err)
	}
	if err := w.Append(); err != nil {
		t.Fatalf("second append should succeed (fault fired once, not retried): %v", err)
	}

	// A persistent transient fault exhausts the budget and says so.
	disarm = faults.Arm(&faults.Plan{Specs: []faults.Spec{
		{Point: faults.CoreMaintainAppend, Transient: true},
	}})
	err = w.Append()
	disarm()
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("exhausted retries not reported: %v", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("exhausted retry hides the cause: %v", err)
	}
}

// TestWatcherConcurrentMaintenanceAndEvaluate races window maintenance
// (Append/Slide under the write lock) against evaluations (read lock +
// immutable representation snapshot) — the Watcher's concurrency
// contract, meaningful under `go test -race`. Every evaluation must match
// a fresh evaluation of whatever window it actually saw.
func TestWatcherConcurrentMaintenanceAndEvaluate(t *testing.T) {
	const transitions = 12
	g, _ := buildEvolving(t, 347, transitions, 25, 25)
	w, err := g.Watch(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Algorithm: BFS, Source: 0}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	done := make(chan struct{})

	// Maintainer: grow to half the history, then slide to its end.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 3; i++ {
			if err := w.Append(); err != nil {
				errc <- fmt.Errorf("append %d: %w", i, err)
				return
			}
		}
		for {
			runtime.Gosched() // let evaluations interleave with the slides
			if err := w.Slide(); err != nil {
				return // slid off the end of the history: expected
			}
			if _, to := w.Window(); to >= transitions {
				return
			}
		}
	}()

	// Evaluators: race reads against the maintenance above. The loop is
	// iteration-bounded and yields each pass: an unbounded hot loop can
	// monopolize a single-CPU scheduler (the engine's worker handoff keeps
	// winning the runnext slot) and starve the maintainer forever.
	for e := 0; e < 2; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				select {
				case <-done:
					return
				default:
				}
				runtime.Gosched()
				res, err := w.Evaluate(q, DirectHop, Options{})
				if err != nil {
					errc <- fmt.Errorf("evaluate: %w", err)
					return
				}
				from := res.Snapshots[0].Index
				to := res.Snapshots[len(res.Snapshots)-1].Index
				fresh, err := g.Evaluate(q, from, to, DirectHop, Options{})
				if err != nil {
					errc <- fmt.Errorf("fresh [%d,%d]: %w", from, to, err)
					return
				}
				for k := range res.Snapshots {
					if res.Snapshots[k].Checksum != fresh.Snapshots[k].Checksum {
						errc <- fmt.Errorf("window [%d,%d] snapshot %d differs from fresh evaluation", from, to, k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

GO ?= go
FUZZTIME ?= 10s
# bench-json: which experiments to snapshot and where. CI commits one
# BENCH_PR<n>.json per PR so the performance trajectory is diffable.
BENCH_JSON_OUT ?= BENCH_PR10.json
BENCH_JSON_FLAGS ?= -exp all
# perf-smoke: the committed engine-benchmark baseline of the previous PR
# and where to write this run's numbers. The store pair covers the durable
# store's cold-open-vs-text-ingest gap and the WAL fsync cost.
PERF_BASELINE ?= bench/engine-PR4.txt
PERF_OUT ?= /tmp/engine-perf.txt
PERF_STORE_BASELINE ?= bench/store-PR5.txt
PERF_STORE_OUT ?= /tmp/store-perf.txt
PERF_COUNT ?= 5

.PHONY: all build test race vet check sarif fuzz-smoke chaos bench-json metrics-smoke obs-bench obs-overhead perf-smoke store-crash repl-crash serve-soak shard-soak ci

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The §5 parallel executor is validated under the race detector; the
# race-stress tests in internal/core pit Parallelism 1/2/unbounded
# against sequential Work-Sharing over a shared representation.
race:
	$(GO) test -race -timeout 45m ./...

# vet = the standard toolchain vet plus cgvet, the repo's own
# invariant-checking analyzers (eight syntactic + the v2 flow tier:
# goleak, ctxflow, atomicguard, errflow, plus ignore hygiene). Both must
# be clean; cgvet gates on .cgvet.baseline.json, so only *fresh*
# findings fail.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/cgvet ./...

# check = the full static gate: compile, toolchain vet, cgvet. This is
# what the dedicated CI cgvet job runs before producing the SARIF report.
check: build vet

# sarif renders the cgvet findings as SARIF 2.1.0 (cgvet.sarif) for
# GitHub code-scanning upload. The file is written even when findings
# exist — the exit status still reflects them.
sarif:
	$(GO) run ./cmd/cgvet -sarif ./... > cgvet.sarif

# Short deterministic fuzz of the graph ingest paths (text + binary) and
# the engine differential oracle (every scheduler variant vs reference.go
# on fuzzer-shaped random graphs and batches).
fuzz-smoke:
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzParseEdgeList$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzLoadCSR$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzEdgeListIO$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine -run '^$$' -fuzz '^FuzzEngineDifferential$$' -fuzztime $(FUZZTIME)

# Probabilistic fault injection under the race detector: seeded random
# errors and panics (internal/faults) against the degraded parallel
# executor, plus the deterministic fault/cancellation matrix and the
# race-stress suite. Every outcome must be a clean result, an exact
# degraded result, or a wrapped injected error — never a crash.
chaos:
	COMMONGRAPH_CHAOS=1 COMMONGRAPH_TRACE=log $(GO) test -race ./internal/core -count=1 \
		-run 'Chaos|Fault|Panic|Degrade|Cancellation|RaceStress'
	$(GO) test -race . -count=1 -run 'Fault|Degrade|Cancelled|WatcherConcurrent|WatcherRetries'

# Machine-readable benchmark snapshot: every experiment's table plus its
# wall time as one JSON report (internal/bench.Report — a stable shape).
bench-json:
	$(GO) run ./cmd/cgbench $(BENCH_JSON_FLAGS) -json $(BENCH_JSON_OUT)

# Metrics-endpoint smoke: scrape a live Watcher.ServeMetrics endpoint
# over HTTP and validate the Prometheus exposition plus counter deltas
# against Result fields, then the registry's own format round-trips.
metrics-smoke:
	$(GO) test . -count=1 -run 'MetricsEndpoint|MetricsServer'
	$(GO) test ./internal/obs -count=1

# Disabled-path regression guard: the nil-tracer span chain must stay
# allocation-free and within ~2% of baseline (benchstat old new), and
# the end-to-end untraced evaluation must not regress against the
# pre-instrumentation pipeline. See internal/obs/bench_test.go.
obs-bench:
	$(GO) test ./internal/obs -run '^$$' -bench 'Disabled|Counter|Histogram' -benchmem -count=5
	$(GO) test ./internal/core -run '^$$' -bench 'TracingOverhead' -benchmem -count=3

# Always-on observability gate: time the kickstarter maintain loop with
# flight recording off (nil ambient tracer — the pre-instrumentation
# path) and on (ring-only recorder). The experiment itself FAILS when
# the recorder costs more than 5%, so this target is a hard CI gate.
obs-overhead:
	$(GO) run ./cmd/cgbench -exp obs-overhead

# Engine hot-path perf guard: rerun the BenchmarkEngine* suite and diff it
# against the previous PR's committed baseline (bench/engine-PR<n>.txt).
# Uses benchstat when present (CI installs it; `go install
# golang.org/x/perf/cmd/benchstat@latest` locally); without it the target
# still runs the suite and prints both files for eyeball comparison.
perf-smoke:
	$(GO) test ./internal/engine -run '^$$' -bench '^BenchmarkEngine' -benchmem -count=$(PERF_COUNT) | tee $(PERF_OUT)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(PERF_BASELINE) $(PERF_OUT); \
	else \
		echo "--- benchstat not installed; baseline $(PERF_BASELINE) below for manual comparison ---"; \
		grep '^Benchmark' $(PERF_BASELINE); \
	fi
	$(GO) test . -run '^$$' -bench '^BenchmarkColdOpen$$|^BenchmarkTextIngest$$|^BenchmarkWALAppend$$' -benchmem -count=$(PERF_COUNT) | tee $(PERF_STORE_OUT)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(PERF_STORE_BASELINE) $(PERF_STORE_OUT); \
	else \
		echo "--- benchstat not installed; baseline $(PERF_STORE_BASELINE) below for manual comparison ---"; \
		grep '^Benchmark' $(PERF_STORE_BASELINE); \
	fi

# Durable-store crash matrix under the race detector: kill points injected
# at every WAL/segment/manifest/compaction write boundary (internal/faults),
# the byte-level torn-tail truncation sweep, and the end-to-end ingest
# crash-replay that resumes from Acknowledged()+Recovered() and must land
# byte-identical to the uncrashed run.
store-crash:
	$(GO) test -race ./internal/store -count=1 -run 'KillPoint|TornTail|Corrupt|Recovery'
	$(GO) test -race . -count=1 -run 'TestDurableIngestCrashReplayMatrix|TestDurableIngestMatchesInMemory|TestPersistReopenDifferential|TestWatcherPersistCompaction'

# Replication failover matrix under the race detector: kill points
# injected at every ship/replay/promote boundary (faults.Repl*), the
# follower crash-and-cold-reopen recovery sweep, seeded chaos shipping,
# and the epoch-fencing promotion matrix (a fenced stale primary must
# never commit after a follower is promoted), plus the public-surface
# failover and follower-read-equivalence differentials.
repl-crash:
	$(GO) test -race ./internal/repl -count=1 -run 'KillPoint|CrashRecovery|Chaos|Promote|Fences|Reopen|Rebootstrap'
	$(GO) test -race ./internal/store -count=1 -run 'Epoch|Fenc'
	$(GO) test -race . -count=1 -run 'TestFailoverPromotion|TestFailoverTraceLineage|TestStitchedTraceAcrossReplication|TestFollowerReadEquivalence|TestFollowerStalenessBudget|TestFollowerReopenServesOffline|TestFollowerWindowWidthSlides'

# Query-service soak under the race detector: concurrent mixed-tenant
# load with live window commits (admission, quotas, result-cache
# invalidation, cross-query ICG sharing), the commit-vs-cache-insert
# race injected at faults.ServeCacheInsert, and the wire golden files.
serve-soak:
	$(GO) test -race ./internal/serve -count=1
	$(GO) test -race ./api/v1 -count=1
	$(GO) test -race . -count=1 -run 'TestPlanCache'

# Sharded-execution soak under the race detector: the differential
# oracle matrix (every algorithm x shard counts x pinned/unpinned plans
# vs reference.go), the mmap segment tests (kill points, corruption,
# mapped-vs-materialized equivalence), and the public-API strategy
# differential over Options.Shards.
shard-soak:
	$(GO) test -race ./internal/shard -count=1
	$(GO) test -race ./internal/store -count=1 -run 'Mapped'
	$(GO) test -race . -count=1 -run 'TestShardedStrategyDifferential|TestShardedEdgesEvaluated'

ci: check test race fuzz-smoke chaos metrics-smoke obs-overhead store-crash repl-crash serve-soak shard-soak

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet fuzz-smoke chaos ci

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The §5 parallel executor is validated under the race detector; the
# race-stress tests in internal/core pit Parallelism 1/2/unbounded
# against sequential Work-Sharing over a shared representation.
race:
	$(GO) test -race -timeout 45m ./...

# vet = the standard toolchain vet plus cgvet, the repo's own
# invariant-checking analyzers (CSR immutability, lock discipline,
# engine-state write sites, determinism). Both must be clean.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/cgvet ./...

# Short deterministic fuzz of the graph ingest paths (text + binary).
fuzz-smoke:
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzParseEdgeList$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzLoadCSR$$' -fuzztime $(FUZZTIME)

# Probabilistic fault injection under the race detector: seeded random
# errors and panics (internal/faults) against the degraded parallel
# executor, plus the deterministic fault/cancellation matrix and the
# race-stress suite. Every outcome must be a clean result, an exact
# degraded result, or a wrapped injected error — never a crash.
chaos:
	COMMONGRAPH_CHAOS=1 $(GO) test -race ./internal/core -count=1 \
		-run 'Chaos|Fault|Panic|Degrade|Cancellation|RaceStress'
	$(GO) test -race . -count=1 -run 'Fault|Degrade|Cancelled|WatcherConcurrent|WatcherRetries'

ci: build vet test race fuzz-smoke chaos

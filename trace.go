package commongraph

import (
	"io"
	"net/http"

	"commongraph/internal/obs"
)

// Tracer is the structured tracing sink of the observability layer: an
// in-memory span/event recorder whose buffer exports as Chrome
// trace_event JSON (WriteChromeTrace — loadable in chrome://tracing,
// Perfetto, or speedscope) and optionally streams every span to a
// log/slog logger as it completes. A nil *Tracer is the disabled tracer:
// every operation is a no-op costing one pointer test, so instrumented
// code never branches on enablement.
//
// The span taxonomy the pipeline emits (evaluate, common.solve, hop,
// schedule.edge, subtree, kickstarter.transition, engine.run, ...) is
// documented in DESIGN.md "Observability" and is a stable contract.
type Tracer = obs.Tracer

// TracerOption configures NewTracer.
type TracerOption = obs.TracerOption

// NewTracer creates an enabled tracer. Options: WithTraceLogger streams
// spans to a slog.Logger as they end; WithTraceEventLimit bounds the
// in-memory buffer (default obs.DefaultEventLimit).
func NewTracer(opts ...TracerOption) *Tracer { return obs.New(opts...) }

// WithTraceLogger streams every completed span and instant event to the
// logger, in addition to buffering them for export.
var WithTraceLogger = obs.WithLogger

// WithTraceEventLimit overrides the tracer's buffered-event cap.
var WithTraceEventLimit = obs.WithEventLimit

// TraceEnvVar is the environment variable that arms the process-wide
// tracer without code changes: "log" (or "1"/"stderr") streams spans to
// stderr via slog; any other value is a path the Chrome trace JSON is
// written to by WriteEnvTrace.
const TraceEnvVar = obs.EnvVar

// EnvTracer returns the process-wide tracer configured by
// COMMONGRAPH_TRACE, or nil when the variable is unset. Options.Trace
// falls back to it, so exporting a trace from any command or test is
// just setting the variable.
func EnvTracer() *Tracer { return obs.Env() }

// WriteEnvTrace writes the env tracer's buffer to the path named by
// COMMONGRAPH_TRACE (no-op for the "log" and unset configurations).
// Commands defer it before exit.
func WriteEnvTrace() error { return obs.WriteEnvTrace() }

// WriteChromeTrace exports a tracer's buffer as Chrome trace_event JSON.
// Equivalent to t.WriteChromeTrace(w); provided so callers holding a nil
// tracer can still produce a well-formed (empty) trace.
func WriteChromeTrace(t *Tracer, w io.Writer) error { return t.WriteChromeTrace(w) }

// MetricsHandler returns an http.Handler serving the process-wide metric
// registry: Prometheus text exposition format by default,
// expvar-style JSON with ?format=json (or Accept: application/json).
// Every metric the pipeline maintains (commongraph_queries_total,
// commongraph_hop_seconds, commongraph_fault_injections_total, ...) is
// on this registry; DESIGN.md "Observability" lists them.
func MetricsHandler() http.Handler { return obs.Default().Handler() }

// WriteMetricsPrometheus writes the process-wide registry in Prometheus
// text exposition format — the same bytes MetricsHandler serves —
// for commands that dump metrics on exit instead of serving HTTP.
func WriteMetricsPrometheus(w io.Writer) error { return obs.Default().WritePrometheus(w) }

package commongraph

import (
	"context"
	"io"
	"net/http"
	"time"

	"commongraph/internal/obs"
)

// Tracer is the structured tracing sink of the observability layer: an
// in-memory span/event recorder whose buffer exports as Chrome
// trace_event JSON (WriteChromeTrace — loadable in chrome://tracing,
// Perfetto, or speedscope) and optionally streams every span to a
// log/slog logger as it completes. A nil *Tracer is the disabled tracer:
// every operation is a no-op costing one pointer test, so instrumented
// code never branches on enablement.
//
// The span taxonomy the pipeline emits (evaluate, common.solve, hop,
// schedule.edge, subtree, kickstarter.transition, engine.run, ...) is
// documented in DESIGN.md "Observability" and is a stable contract.
type Tracer = obs.Tracer

// TracerOption configures NewTracer.
type TracerOption = obs.TracerOption

// NewTracer creates an enabled tracer. Options: WithTraceLogger streams
// spans to a slog.Logger as they end; WithTraceEventLimit bounds the
// in-memory buffer (default obs.DefaultEventLimit).
func NewTracer(opts ...TracerOption) *Tracer { return obs.New(opts...) }

// WithTraceLogger streams every completed span and instant event to the
// logger, in addition to buffering them for export.
var WithTraceLogger = obs.WithLogger

// WithTraceEventLimit overrides the tracer's buffered-event cap.
var WithTraceEventLimit = obs.WithEventLimit

// TraceEnvVar is the environment variable that arms the process-wide
// tracer without code changes: "log" (or "1"/"stderr") streams spans to
// stderr via slog; any other value is a path the Chrome trace JSON is
// written to by WriteEnvTrace.
const TraceEnvVar = obs.EnvVar

// EnvTracer returns the process-wide tracer configured by
// COMMONGRAPH_TRACE, or nil when the variable is unset. Options.Trace
// falls back to it, so exporting a trace from any command or test is
// just setting the variable.
func EnvTracer() *Tracer { return obs.Env() }

// WriteEnvTrace writes the env tracer's buffer to the path named by
// COMMONGRAPH_TRACE (no-op for the "log" and unset configurations).
// Commands defer it before exit.
func WriteEnvTrace() error { return obs.WriteEnvTrace() }

// WriteChromeTrace exports a tracer's buffer as Chrome trace_event JSON.
// Equivalent to t.WriteChromeTrace(w); provided so callers holding a nil
// tracer can still produce a well-formed (empty) trace.
func WriteChromeTrace(t *Tracer, w io.Writer) error { return t.WriteChromeTrace(w) }

// MetricsHandler returns an http.Handler serving the process-wide metric
// registry: Prometheus text exposition format by default,
// expvar-style JSON with ?format=json (or Accept: application/json).
// Every metric the pipeline maintains (commongraph_queries_total,
// commongraph_hop_seconds, commongraph_fault_injections_total, ...) is
// on this registry; DESIGN.md "Observability" lists them.
func MetricsHandler() http.Handler { return obs.Default().Handler() }

// WriteMetricsPrometheus writes the process-wide registry in Prometheus
// text exposition format — the same bytes MetricsHandler serves —
// for commands that dump metrics on exit instead of serving HTTP.
func WriteMetricsPrometheus(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// TraceID identifies one request's entire span tree — across goroutines,
// and across processes when it rides a replication frame header. Spans
// that share a TraceID stitch into one timeline in WriteChromeTrace and
// WriteStitchedChromeTrace.
type TraceID = obs.TraceID

// SpanContext is the wire-propagated identity of a span: the pair a
// remote child (a follower replay, a read at bounded staleness) needs to
// join its parent's trace. The zero value is "no trace".
type SpanContext = obs.SpanContext

// ParseTraceID parses the 16-hex-digit form TraceID.String produces —
// the ?id= parameter of the /debug/trace ops endpoint.
func ParseTraceID(s string) (TraceID, error) { return obs.ParseTraceID(s) }

// ContextWithSpan returns ctx carrying sc; spans started under it (the
// evaluate root span, watcher reads) become remote children of sc.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return obs.ContextWithSpan(ctx, sc)
}

// SpanFromContext returns the span context carried by ctx, or the zero
// SpanContext.
func SpanFromContext(ctx context.Context) SpanContext { return obs.FromContext(ctx) }

// WithTraceIDSource seeds the tracer's trace/span ID generator — tests
// use it for deterministic IDs.
func WithTraceIDSource(seed uint64) TracerOption {
	return obs.WithIDSource(obs.NewIDSource(seed))
}

// TraceProcess names one tracer's buffer for a stitched export.
type TraceProcess = obs.TraceProcess

// WriteStitchedChromeTrace merges several tracers' buffers — typically a
// primary's and a follower's — into one Chrome trace_event JSON timeline,
// one named process row each. Spans sharing a TraceID (propagated over
// the replication wire) line up as a single cross-process request tree.
func WriteStitchedChromeTrace(w io.Writer, procs ...TraceProcess) error {
	return obs.WriteStitchedChromeTrace(w, procs...)
}

// SetFlightRecording toggles the always-on flight recorder (default on).
// Off restores the exact pre-recorder instrumentation cost: ambient
// tracing sites see a nil tracer. Returns the previous state.
func SetFlightRecording(on bool) bool { return obs.SetFlightRecording(on) }

// WriteFlightRecorder dumps the flight recorder's retained root-span
// subtrees as JSON — the same document the /debug/flightrecorder ops
// endpoint serves.
func WriteFlightRecorder(w io.Writer) error { return obs.Flight().WriteJSON(w) }

// WriteSlowLog dumps the slow-query log (per-strategy reservoirs,
// slowest first) as JSON — the same document /debug/slowlog serves.
func WriteSlowLog(w io.Writer) error { return obs.Slow().WriteJSON(w) }

// SetSlowQueryThreshold sets the latency at or above which a query is
// recorded in the slow-query log (default 100ms). Returns the previous
// threshold.
func SetSlowQueryThreshold(d time.Duration) time.Duration {
	return obs.Slow().SetThreshold(d)
}

// SetIncidentSink redirects automatic incident dumps (panic, fencing,
// staleness refusals) to w — stderr by default — and returns the
// previous sink.
func SetIncidentSink(w io.Writer) io.Writer { return obs.SetIncidentSink(w) }
